#!/usr/bin/env python
"""Influence maximization under MFC: the forward problem to ISOMIT.

The paper positions rumor-initiator detection against influence
maximization in signed networks (Table I). This example runs the
forward direction on the same substrate: pick ``k`` campaign seeds to
maximise either raw spread or the *polarity margin*
(#agreeing − #disagreeing), and show how the signed structure makes the
two objectives pick different seeds.

Run:  python examples/influence_maximization.py
"""

from repro.diffusion.mfc import MFCModel
from repro.diffusion.monte_carlo import estimate_spread
from repro.experiments.reporting import format_table
from repro.graphs.generators import generate_slashdot_like
from repro.graphs.transforms import to_diffusion_network
from repro.influence import (
    greedy_influence_maximization,
    margin_objective,
    spread_objective,
)
from repro.types import NodeState
from repro.weights.jaccard import assign_jaccard_weights

SEED = 17
BUDGET = 4


def main() -> None:
    social = generate_slashdot_like(scale=0.004, rng=SEED)
    diffusion = to_diffusion_network(social)
    # Full gain on negative links too: distrust edges matter for the
    # margin objective, so this scenario keeps them influential.
    assign_jaccard_weights(
        diffusion, social, rng=SEED, gain=8.0, negative_gain_fraction=1.0
    )
    model = MFCModel(alpha=3.0)

    # Shortlist: top out-degree nodes (the usual IM heuristic pool).
    shortlist = sorted(
        diffusion.nodes(), key=diffusion.out_degree, reverse=True
    )[:25]
    print(
        f"network: {diffusion.number_of_nodes()} nodes; selecting "
        f"{BUDGET} seeds from a {len(shortlist)}-candidate shortlist"
    )

    rows = []
    for label, objective in (("spread", spread_objective), ("margin", margin_objective)):
        result = greedy_influence_maximization(
            diffusion,
            model,
            budget=BUDGET,
            objective=objective,
            trials=8,
            candidates=shortlist,
            base_seed=SEED,
        )
        seeds = {node: NodeState.POSITIVE for node in result.seeds}
        outcome = estimate_spread(model, diffusion, seeds, trials=10, base_seed=SEED)
        rows.append(
            (
                label,
                ", ".join(str(s) for s in result.seeds),
                result.objective_values[-1],
                outcome.mean_infected,
                outcome.mean_positive_fraction,
                result.evaluations,
            )
        )

    print()
    print(
        format_table(
            headers=[
                "objective",
                "selected seeds",
                "objective value",
                "mean infected",
                "positive frac",
                "CELF evals",
            ],
            rows=rows,
            title=f"Greedy (CELF) influence maximization under MFC, k={BUDGET}",
        )
    )
    print(
        "\nThe margin objective shifts seeds away from users whose audience "
        "distrusts them: raw spread counts every adopter, the margin counts "
        "disagreement against the campaign."
    )


if __name__ == "__main__":
    main()
