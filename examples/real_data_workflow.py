#!/usr/bin/env python
"""The real-data workflow: SNAP files → sample → weight → detect.

The paper's experiments run on SNAP's ``soc-sign-epinions.txt`` and
``soc-sign-Slashdot*.txt``. This example demonstrates the exact pipeline
a user with those downloads would run — parsing the SNAP format,
forest-fire sampling the graph down to laptop scale, Jaccard weighting,
simulating an infection and detecting its sources. Since this sandbox
has no network access, the "download" is stood in for by writing a
profiled synthetic network in the genuine SNAP format first; point
``SNAP_FILE`` at the real file and delete that block to run on the
actual dataset.

Run:  python examples/real_data_workflow.py
"""

import tempfile
from pathlib import Path

from repro import (
    MFCModel,
    RID,
    RIDConfig,
    assign_jaccard_weights,
    generate_epinions_like,
    identity_metrics,
    plant_random_initiators,
    to_diffusion_network,
)
from repro.graphs.io import read_snap_signed_edgelist, write_snap_signed_edgelist
from repro.graphs.sampling import forest_fire_sample
from repro.graphs.stats import summarize
from repro.weights.jaccard import calibrate_gain

SEED = 9


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-snap-"))
    snap_file = workdir / "soc-sign-epinions.txt"

    # --- Stand-in for the SNAP download (delete when using real data) ---
    pretend_download = generate_epinions_like(scale=0.02, rng=SEED)
    write_snap_signed_edgelist(pretend_download, snap_file)
    print(f"wrote stand-in SNAP file: {snap_file}")

    # --- The actual workflow starts here --------------------------------
    # 1. Parse the SNAP signed edge list (gzip supported via .gz suffix).
    social = read_snap_signed_edgelist(snap_file)
    print(f"parsed: {summarize(social, 'epinions')}")

    # 2. Down-sample to laptop scale with forest fire (preserves the
    #    heavy-tailed degree structure that uniform sampling destroys).
    social = forest_fire_sample(social, target_nodes=800, rng=SEED)
    print(
        f"forest-fire sample: {social.number_of_nodes()} nodes, "
        f"{social.number_of_edges()} edges"
    )

    # 3. Reverse into the diffusion network and weight by Jaccard
    #    coefficients (Sec. IV-B3; zero scores filled from U[0, 0.1]).
    #    The gain is auto-calibrated from this network's own overlap
    #    statistics (see DESIGN.md §7).
    diffusion = to_diffusion_network(social)
    gain = calibrate_gain(social, alpha=3.0)
    print(f"auto-calibrated Jaccard gain: {gain:.1f}")
    assign_jaccard_weights(diffusion, social, rng=SEED, gain=gain)

    # 4. Simulate an infection and detect its sources.
    seeds = plant_random_initiators(diffusion, count=25, rng=SEED)
    cascade = MFCModel(alpha=3.0).run(diffusion, seeds, rng=SEED)
    infected = cascade.infected_network(diffusion)
    result = RID(RIDConfig(beta=0.6)).detect(infected)
    metrics = identity_metrics(result.initiators, set(seeds))
    print(
        f"detection on the sampled real-format data: "
        f"{len(result.initiators)} detected, precision={metrics.precision:.3f} "
        f"recall={metrics.recall:.3f} F1={metrics.f1:.3f}"
    )
    print(
        "note: forest-fire samples keep the hubs, so the sampled graph is "
        "denser than the original and nearly everything gets infected — "
        "source detection on such saturated snapshots is intrinsically "
        "hard (see EXPERIMENTS.md on infected-density effects)."
    )


if __name__ == "__main__":
    main()
