"""Property-based tests for MFC cascade invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffusion.mfc import MFCModel
from repro.graphs.signed_digraph import SignedDiGraph
from repro.types import NodeState, Sign


@st.composite
def diffusion_worlds(draw):
    """A random diffusion network with a random non-empty seed set."""
    n = draw(st.integers(min_value=1, max_value=14))
    graph = SignedDiGraph()
    graph.add_nodes(range(n))
    num_edges = draw(st.integers(min_value=0, max_value=min(40, n * (n - 1))))
    for _ in range(num_edges):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            graph.add_edge(
                u,
                v,
                draw(st.sampled_from([-1, 1])),
                draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False)),
            )
    num_seeds = draw(st.integers(min_value=1, max_value=n))
    seed_nodes = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=num_seeds,
            max_size=num_seeds,
            unique=True,
        )
    )
    seeds = {
        node: draw(st.sampled_from([NodeState.POSITIVE, NodeState.NEGATIVE]))
        for node in seed_nodes
    }
    alpha = draw(st.floats(min_value=1.0, max_value=5.0, allow_nan=False))
    rng_seed = draw(st.integers(min_value=0, max_value=2**32))
    return graph, seeds, alpha, rng_seed


class TestMFCInvariants:
    @given(diffusion_worlds())
    @settings(max_examples=80, deadline=None)
    def test_touched_states_are_opinions(self, world):
        graph, seeds, alpha, rng_seed = world
        result = MFCModel(alpha=alpha).run(graph, seeds, rng=rng_seed)
        assert all(state.is_active for state in result.final_states.values())

    @given(diffusion_worlds())
    @settings(max_examples=80, deadline=None)
    def test_seeds_stay_infected(self, world):
        graph, seeds, alpha, rng_seed = world
        result = MFCModel(alpha=alpha).run(graph, seeds, rng=rng_seed)
        for node in seeds:
            assert node in result.final_states
            assert result.final_states[node].is_active

    @given(diffusion_worlds())
    @settings(max_examples=80, deadline=None)
    def test_activation_links_form_forest_over_non_seeds(self, world):
        graph, seeds, alpha, rng_seed = world
        result = MFCModel(alpha=alpha).run(graph, seeds, rng=rng_seed)
        links = result.activation_links()
        # Every linked target is infected and its activator is infected.
        for target, source in links.items():
            assert result.final_states[target].is_active
            assert result.final_states[source].is_active
            assert graph.has_edge(source, target)
        # Every non-seed infected node has exactly one activation link.
        for node, state in result.final_states.items():
            if node not in seeds and state.is_active:
                assert node in links

    @given(diffusion_worlds())
    @settings(max_examples=80, deadline=None)
    def test_flip_events_only_across_positive_links(self, world):
        graph, seeds, alpha, rng_seed = world
        result = MFCModel(alpha=alpha).run(graph, seeds, rng=rng_seed)
        for event in result.events:
            if event.was_flip:
                assert graph.sign(event.source, event.target) is Sign.POSITIVE

    @given(diffusion_worlds())
    @settings(max_examples=80, deadline=None)
    def test_event_states_follow_mfc_product_rule(self, world):
        graph, seeds, alpha, rng_seed = world
        result = MFCModel(alpha=alpha).run(graph, seeds, rng=rng_seed)
        # Replay events: each non-seed event's state must equal the
        # source's state at that moment times the link sign.
        states = {}
        for event in result.events:
            if event.source is None:
                states[event.target] = event.state
                continue
            expected = states[event.source].times(graph.sign(event.source, event.target))
            assert event.state is expected
            states[event.target] = event.state
        assert states == result.final_states

    @given(diffusion_worlds())
    @settings(max_examples=40, deadline=None)
    def test_determinism(self, world):
        graph, seeds, alpha, rng_seed = world
        a = MFCModel(alpha=alpha).run(graph, seeds, rng=rng_seed)
        b = MFCModel(alpha=alpha).run(graph, seeds, rng=rng_seed)
        assert a.final_states == b.final_states
        assert a.events == b.events

    @given(diffusion_worlds())
    @settings(max_examples=40, deadline=None)
    def test_infected_network_is_induced_subgraph(self, world):
        graph, seeds, alpha, rng_seed = world
        result = MFCModel(alpha=alpha).run(graph, seeds, rng=rng_seed)
        infected = result.infected_network(graph)
        infected_set = set(infected.nodes())
        assert infected_set == set(result.infected_nodes())
        for u, v, _ in graph.iter_edges():
            if u in infected_set and v in infected_set:
                assert infected.has_edge(u, v)
