"""Property-based tests for binarisation and the tree DP."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.binarize import binarize_cascade_tree
from repro.core.tree_dp import KIsomitBTSolver, brute_force_k_isomit
from repro.graphs.generators.trees import random_general_tree
from repro.types import NodeState
from repro.utils.rng import spawn_rng


@st.composite
def stated_trees(draw):
    """Random general trees with random opinion states."""
    size = draw(st.integers(min_value=1, max_value=9))
    max_children = draw(st.integers(min_value=2, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    tree = random_general_tree(size, max_children=max_children, rng=seed)
    rng = spawn_rng(seed, "states")
    for node in tree.nodes():
        tree.set_state(
            node, NodeState.POSITIVE if rng.random() < 0.6 else NodeState.NEGATIVE
        )
    alpha = draw(st.floats(min_value=1.0, max_value=4.0, allow_nan=False))
    return tree, alpha


class TestBinarisationProperties:
    @given(stated_trees())
    @settings(max_examples=60, deadline=None)
    def test_real_nodes_preserved(self, world):
        tree, alpha = world
        binary = binarize_cascade_tree(tree, alpha=alpha)
        originals = {n.original for n in binary.nodes if not n.is_dummy}
        assert originals == set(tree.nodes())

    @given(stated_trees())
    @settings(max_examples=60, deadline=None)
    def test_binary_fanout(self, world):
        tree, alpha = world
        binary = binarize_cascade_tree(tree, alpha=alpha)
        for node in binary.nodes:
            children = [c for c in (node.left, node.right) if c is not None]
            assert len(children) <= 2

    @given(stated_trees())
    @settings(max_examples=60, deadline=None)
    def test_dummy_g_is_one(self, world):
        tree, alpha = world
        binary = binarize_cascade_tree(tree, alpha=alpha)
        for node in binary.nodes:
            if node.is_dummy:
                assert node.g_in == 1.0


class TestDPProperties:
    @given(stated_trees(), st.integers(min_value=1, max_value=3))
    @settings(max_examples=50, deadline=None)
    def test_dp_optimal_vs_brute_force(self, world, k):
        tree, alpha = world
        binary = binarize_cascade_tree(tree, alpha=alpha)
        budget = min(k, binary.num_real)
        solver = KIsomitBTSolver(binary)
        dp = solver.solve(budget)
        brute = brute_force_k_isomit(binary, budget, scoring="nearest")
        assert abs(dp.score - brute.score) < 1e-9

    @given(stated_trees())
    @settings(max_examples=40, deadline=None)
    def test_score_monotone_in_k(self, world):
        tree, alpha = world
        binary = binarize_cascade_tree(tree, alpha=alpha)
        solver = KIsomitBTSolver(binary)
        previous = float("-inf")
        for k in range(1, binary.num_real + 1):
            score = solver.solve(k).score
            assert score >= previous - 1e-12
            previous = score

    @given(stated_trees(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=50, deadline=None)
    def test_reconstruction_consistent_with_score(self, world, k):
        tree, alpha = world
        binary = binarize_cascade_tree(tree, alpha=alpha)
        budget = min(k, binary.num_real)
        result = KIsomitBTSolver(binary).solve(budget)
        # Exactly `budget` initiators, all real tree nodes, states match
        # the observed snapshot states.
        assert len(result.initiators) == budget
        for node, state in result.initiators.items():
            assert tree.has_node(node)
            assert tree.state(node) is state

    @given(stated_trees())
    @settings(max_examples=40, deadline=None)
    def test_full_budget_score_equals_real_size(self, world):
        tree, alpha = world
        binary = binarize_cascade_tree(tree, alpha=alpha)
        result = KIsomitBTSolver(binary).solve(binary.num_real)
        assert abs(result.score - binary.num_real) < 1e-9
