"""Property-based end-to-end detection invariants.

Random MFC worlds → RID and baselines; the invariants below must hold on
every snapshot regardless of topology, weights or seeds.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import RIDPositiveDetector, RIDTreeDetector
from repro.core.rid import RID, RIDConfig
from repro.diffusion.mfc import MFCModel
from repro.graphs.signed_digraph import SignedDiGraph
from repro.types import NodeState


@st.composite
def infected_worlds(draw):
    """Simulate a small MFC world; returns (diffusion, seeds, infected)."""
    n = draw(st.integers(min_value=2, max_value=16))
    graph = SignedDiGraph()
    graph.add_nodes(range(n))
    for _ in range(draw(st.integers(min_value=1, max_value=40))):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            graph.add_edge(
                u,
                v,
                draw(st.sampled_from([-1, 1])),
                draw(st.floats(min_value=0.05, max_value=1.0, allow_nan=False)),
            )
    num_seeds = draw(st.integers(min_value=1, max_value=min(3, n)))
    seed_nodes = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=num_seeds,
            max_size=num_seeds,
            unique=True,
        )
    )
    seeds = {
        node: draw(st.sampled_from([NodeState.POSITIVE, NodeState.NEGATIVE]))
        for node in seed_nodes
    }
    alpha = draw(st.floats(min_value=1.0, max_value=4.0, allow_nan=False))
    rng_seed = draw(st.integers(min_value=0, max_value=2**31))
    cascade = MFCModel(alpha=alpha).run(graph, seeds, rng=rng_seed)
    return graph, seeds, cascade.infected_network(graph)


class TestRIDInvariants:
    @given(infected_worlds(), st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_detections_are_infected_nodes(self, world, beta):
        _, _, infected = world
        result = RID(RIDConfig(beta=beta)).detect(infected)
        assert result.initiators <= set(infected.nodes())

    @given(infected_worlds(), st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_states_match_observed_snapshot(self, world, beta):
        _, _, infected = world
        result = RID(RIDConfig(beta=beta)).detect(infected)
        for node, state in result.states.items():
            assert infected.state(node) is state

    @given(infected_worlds())
    @settings(max_examples=50, deadline=None)
    def test_at_least_one_initiator_per_tree(self, world):
        _, _, infected = world
        result = RID(RIDConfig(beta=1.0)).detect(infected)
        assert len(result.initiators) >= len(result.trees)

    @given(infected_worlds())
    @settings(max_examples=40, deadline=None)
    def test_beta_zero_detects_superset_count(self, world):
        _, _, infected = world
        low = RID(RIDConfig(beta=0.0)).detect(infected)
        high = RID(RIDConfig(beta=1.0)).detect(infected)
        assert len(low.initiators) >= len(high.initiators)

    @given(infected_worlds())
    @settings(max_examples=40, deadline=None)
    def test_trees_partition_infected_nodes(self, world):
        _, _, infected = world
        result = RID(RIDConfig(beta=0.5)).detect(infected)
        covered = sorted(
            node for tree in result.trees for node in tree.nodes()
        )
        assert covered == sorted(infected.nodes())


class TestBaselineInvariants:
    @given(infected_worlds())
    @settings(max_examples=50, deadline=None)
    def test_tree_roots_have_no_infected_in_links(self, world):
        _, _, infected = world
        result = RIDTreeDetector().detect(infected)
        for root in result.initiators:
            in_neighbors = set(infected.predecessors(root))
            # Roots either have no infected in-neighbours at all, or sit
            # in a source cycle (every in-neighbour reachable FROM the
            # root through the infected graph) — the documented artifact.
            if in_neighbors:
                from repro.graphs.paths import reachable_from

                assert in_neighbors <= reachable_from(infected, root)

    @given(infected_worlds())
    @settings(max_examples=50, deadline=None)
    def test_positive_detects_superset_of_positive_only_roots(self, world):
        _, _, infected = world
        result = RIDPositiveDetector().detect(infected)
        assert result.initiators <= set(infected.nodes())
        assert len(result.initiators) >= 1 or infected.number_of_nodes() == 0
