"""Property-based tests for masking and imputation invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.imputation import impute_unknown_states, mask_states, observed_fraction
from repro.graphs.signed_digraph import SignedDiGraph
from repro.types import NodeState


@st.composite
def infected_snapshots(draw):
    """Random snapshots with only active states (like real G_I inputs)."""
    n = draw(st.integers(min_value=1, max_value=12))
    graph = SignedDiGraph()
    for node in range(n):
        graph.add_node(
            node, draw(st.sampled_from([NodeState.POSITIVE, NodeState.NEGATIVE]))
        )
    for _ in range(draw(st.integers(min_value=0, max_value=30))):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            graph.add_edge(
                u,
                v,
                draw(st.sampled_from([-1, 1])),
                draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False)),
            )
    return graph


class TestMaskingProperties:
    @given(
        infected_snapshots(),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_masked_count_matches_fraction(self, graph, fraction, seed):
        masked = mask_states(graph, fraction, rng=seed)
        unknown = sum(
            1 for node in masked.nodes() if masked.state(node) is NodeState.UNKNOWN
        )
        assert unknown == int(round(fraction * graph.number_of_nodes()))

    @given(
        infected_snapshots(),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_observed_fraction_complements_mask(self, graph, fraction, seed):
        masked = mask_states(graph, fraction, rng=seed)
        n = graph.number_of_nodes()
        expected = 1.0 - int(round(fraction * n)) / n
        assert abs(observed_fraction(masked) - expected) < 1e-9


class TestImputationProperties:
    @given(
        infected_snapshots(),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_no_unknowns_remain(self, graph, fraction, seed):
        masked = mask_states(graph, fraction, rng=seed)
        completed = impute_unknown_states(masked)
        assert all(
            completed.state(node) is not NodeState.UNKNOWN
            for node in completed.nodes()
        )

    @given(
        infected_snapshots(),
        st.floats(min_value=0.0, max_value=0.9, allow_nan=False),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_known_states_preserved(self, graph, fraction, seed):
        masked = mask_states(graph, fraction, rng=seed)
        completed = impute_unknown_states(masked)
        for node in masked.nodes():
            if masked.state(node) is not NodeState.UNKNOWN:
                assert completed.state(node) is masked.state(node)

    @given(infected_snapshots())
    @settings(max_examples=40, deadline=None)
    def test_fully_observed_is_fixpoint(self, graph):
        completed = impute_unknown_states(graph)
        assert completed.states() == graph.states()

    @given(
        infected_snapshots(),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_structure_untouched(self, graph, fraction, seed):
        masked = mask_states(graph, fraction, rng=seed)
        completed = impute_unknown_states(masked)
        assert {(u, v) for u, v, _ in completed.iter_edges()} == {
            (u, v) for u, v, _ in graph.iter_edges()
        }
