"""Property-based round-trip tests for graph serialisation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.io import (
    graph_from_dict,
    graph_to_dict,
    iter_snap_edges,
)
from repro.graphs.signed_digraph import SignedDiGraph
from repro.types import NodeState


@st.composite
def serialisable_graphs(draw):
    n = draw(st.integers(min_value=0, max_value=10))
    graph = SignedDiGraph(name=draw(st.text(max_size=8)))
    graph.add_nodes(range(n))
    for node in range(n):
        graph.set_state(
            node,
            draw(
                st.sampled_from(
                    [
                        NodeState.POSITIVE,
                        NodeState.NEGATIVE,
                        NodeState.INACTIVE,
                        NodeState.UNKNOWN,
                    ]
                )
            ),
        )
    for _ in range(draw(st.integers(min_value=0, max_value=20))):
        u = draw(st.integers(min_value=0, max_value=max(n - 1, 0)))
        v = draw(st.integers(min_value=0, max_value=max(n - 1, 0)))
        if n and u != v:
            graph.add_edge(
                u,
                v,
                draw(st.sampled_from([-1, 1])),
                draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False)),
            )
    return graph


class TestJsonRoundTripProperties:
    @given(serialisable_graphs())
    @settings(max_examples=60, deadline=None)
    def test_round_trip_preserves_everything(self, graph):
        clone = graph_from_dict(graph_to_dict(graph))
        assert clone.name == graph.name
        assert set(clone.nodes()) == set(graph.nodes())
        assert clone.states() == graph.states()
        assert {(u, v) for u, v, _ in clone.iter_edges()} == {
            (u, v) for u, v, _ in graph.iter_edges()
        }
        for u, v, data in graph.iter_edges():
            assert clone.sign(u, v) is data.sign
            assert clone.weight(u, v) == data.weight


class TestSnapLineProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1000),
                st.integers(min_value=0, max_value=1000),
                st.sampled_from([-1, 1]),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_formatting_round_trip(self, triples):
        lines = [f"{u}\t{v}\t{s}" for u, v, s in triples]
        parsed = list(iter_snap_edges(iter(lines)))
        assert parsed == triples

    @given(st.lists(st.sampled_from(["# comment", "", "   ", "# x\ty\tz"]), max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_comments_and_blanks_ignored(self, lines):
        assert list(iter_snap_edges(iter(lines))) == []
