"""Differential tests: our Edmonds vs networkx's reference implementation.

networkx is a test-only dependency; the library itself is dependency
free. We compare total branching scores rather than edge sets (optimal
branchings are generally non-unique).
"""

import math

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arborescence import maximum_spanning_branching
from repro.graphs.signed_digraph import SignedDiGraph


@st.composite
def weighted_digraphs(draw):
    n = draw(st.integers(min_value=2, max_value=9))
    graph = SignedDiGraph()
    graph.add_nodes(range(n))
    for u in range(n):
        for v in range(n):
            if u != v and draw(st.booleans()):
                weight = draw(
                    st.floats(min_value=0.05, max_value=1.0, allow_nan=False)
                )
                graph.add_edge(u, v, 1, round(weight, 4))
    return graph


def _our_solution(graph):
    forest = maximum_spanning_branching(graph)
    edges = [(u, v) for u, v, _ in forest.iter_edges()]
    roots = graph.number_of_nodes() - len(edges)
    score = sum(math.log(graph.weight(u, v)) for u, v in edges)
    return roots, score


def _networkx_solution(graph):
    """Min-roots-then-max-log-likelihood branching via networkx.

    networkx's ``maximum_branching`` maximises the plain weight sum and
    happily leaves nodes parentless when all their in-edges have
    negative transformed weight — exactly the virtual-root problem. We
    level the field the same way: shift every log-weight by a constant
    large enough that keeping an edge is always better than dropping it,
    which simultaneously minimises the number of roots.
    """
    n = graph.number_of_nodes()
    shift = 2.0 * n * 30.0
    nx_graph = nx.DiGraph()
    nx_graph.add_nodes_from(graph.nodes())
    for u, v, data in graph.iter_edges():
        nx_graph.add_edge(u, v, weight=math.log(data.weight) + shift)
    branching = nx.maximum_branching(nx_graph)
    edges = list(branching.edges())
    roots = n - len(edges)
    score = sum(math.log(graph.weight(u, v)) for u, v in edges)
    return roots, score


class TestAgainstNetworkx:
    @given(weighted_digraphs())
    @settings(max_examples=60, deadline=None)
    def test_same_root_count_and_score(self, graph):
        our_roots, our_score = _our_solution(graph)
        nx_roots, nx_score = _networkx_solution(graph)
        assert our_roots == nx_roots
        assert our_score == pytest.approx(nx_score, abs=1e-6)

    def test_known_instance(self):
        graph = SignedDiGraph()
        for u, v, w in [(0, 1, 0.516), (0, 2, 0.609), (1, 0, 0.321), (1, 2, 0.216), (2, 0, 0.61)]:
            graph.add_edge(u, v, 1, w)
        our_roots, our_score = _our_solution(graph)
        nx_roots, nx_score = _networkx_solution(graph)
        assert (our_roots, round(our_score, 6)) == (nx_roots, round(nx_score, 6))
