"""Property-based tests for structural-balance analysis."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.balance import (
    is_balanced,
    node_balance_degree,
    triangle_census,
    two_faction_partition,
)
from repro.graphs.signed_digraph import SignedDiGraph


@st.composite
def signed_graphs(draw):
    n = draw(st.integers(min_value=0, max_value=10))
    graph = SignedDiGraph()
    graph.add_nodes(range(n))
    for _ in range(draw(st.integers(min_value=0, max_value=25))):
        u = draw(st.integers(min_value=0, max_value=max(n - 1, 0)))
        v = draw(st.integers(min_value=0, max_value=max(n - 1, 0)))
        if n and u != v:
            graph.add_edge(u, v, draw(st.sampled_from([-1, 1])), 0.5)
    return graph


@st.composite
def all_positive_graphs(draw):
    graph = draw(signed_graphs())
    positive = SignedDiGraph()
    positive.add_nodes(graph.nodes())
    for u, v, data in graph.iter_edges():
        positive.add_edge(u, v, 1, data.weight)
    return positive


class TestBalanceProperties:
    @given(signed_graphs())
    @settings(max_examples=80, deadline=None)
    def test_census_total_consistent(self, graph):
        census = triangle_census(graph)
        assert census.total == (
            census.all_positive
            + census.one_negative
            + census.two_negative
            + census.all_negative
        )
        assert 0.0 <= census.balance_ratio <= 1.0

    @given(all_positive_graphs())
    @settings(max_examples=60, deadline=None)
    def test_all_positive_graphs_are_balanced(self, graph):
        assert is_balanced(graph)
        census = triangle_census(graph)
        assert census.balance_ratio == 1.0
        _, faction_b, frustrated = two_faction_partition(graph)
        assert frustrated == 0
        assert faction_b == set()  # everyone in one faction

    @given(signed_graphs())
    @settings(max_examples=80, deadline=None)
    def test_zero_greedy_frustration_implies_balanced(self, graph):
        _, _, frustrated = two_faction_partition(graph)
        if frustrated == 0:
            assert is_balanced(graph)

    @given(signed_graphs())
    @settings(max_examples=80, deadline=None)
    def test_balanced_implies_zero_frustration(self, graph):
        # On balanced graphs the BFS colouring is forced per component,
        # so the greedy partition is exact.
        if is_balanced(graph):
            _, _, frustrated = two_faction_partition(graph)
            assert frustrated == 0

    @given(signed_graphs())
    @settings(max_examples=60, deadline=None)
    def test_partition_is_exhaustive_and_disjoint(self, graph):
        faction_a, faction_b, _ = two_faction_partition(graph)
        assert faction_a | faction_b == set(graph.nodes())
        assert not faction_a & faction_b

    @given(signed_graphs())
    @settings(max_examples=60, deadline=None)
    def test_node_balance_degree_bounds(self, graph):
        for node in graph.nodes():
            assert 0.0 <= node_balance_degree(graph, node) <= 1.0
