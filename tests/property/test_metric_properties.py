"""Property-based tests for metric identities."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.identity import f1_score, identity_metrics, precision, recall
from repro.metrics.state import accuracy, mean_absolute_error, r_squared
from repro.types import NodeState

node_sets = st.sets(st.integers(min_value=0, max_value=30), max_size=15)
state_maps = st.dictionaries(
    st.integers(min_value=0, max_value=20),
    st.sampled_from([NodeState.POSITIVE, NodeState.NEGATIVE]),
    max_size=12,
)


class TestIdentityMetricProperties:
    @given(node_sets, node_sets)
    @settings(max_examples=100, deadline=None)
    def test_bounds(self, predicted, truth):
        assert 0.0 <= precision(predicted, truth) <= 1.0
        assert 0.0 <= recall(predicted, truth) <= 1.0
        assert 0.0 <= f1_score(predicted, truth) <= 1.0

    @given(node_sets, node_sets)
    @settings(max_examples=100, deadline=None)
    def test_f1_between_min_and_max_of_p_r(self, predicted, truth):
        p, r = precision(predicted, truth), recall(predicted, truth)
        f1 = f1_score(predicted, truth)
        assert f1 <= max(p, r) + 1e-12
        if p > 0 and r > 0:
            assert f1 >= min(p, r) - 1e-12

    @given(node_sets, node_sets)
    @settings(max_examples=100, deadline=None)
    def test_precision_recall_duality(self, predicted, truth):
        # Swapping prediction and truth swaps precision and recall.
        assert precision(predicted, truth) == recall(truth, predicted)

    @given(node_sets)
    @settings(max_examples=50, deadline=None)
    def test_self_detection_perfect(self, nodes):
        if nodes:
            m = identity_metrics(nodes, nodes)
            assert m.precision == m.recall == m.f1 == 1.0

    @given(node_sets, node_sets)
    @settings(max_examples=100, deadline=None)
    def test_confusion_counts_sum(self, predicted, truth):
        m = identity_metrics(predicted, truth)
        assert m.true_positives + m.false_positives == len(predicted)
        assert m.true_positives + m.false_negatives == len(truth)


class TestStateMetricProperties:
    @given(state_maps, state_maps)
    @settings(max_examples=100, deadline=None)
    def test_accuracy_bounds(self, predicted, truth):
        assert 0.0 <= accuracy(predicted, truth) <= 1.0

    @given(state_maps, state_maps)
    @settings(max_examples=100, deadline=None)
    def test_mae_accuracy_identity(self, predicted, truth):
        # For ±1 labels: MAE = 2 * (1 - accuracy) on the common keys.
        common = set(predicted) & set(truth)
        if not common:
            return
        acc = accuracy(predicted, truth)
        mae = mean_absolute_error(predicted, truth)
        assert abs(mae - 2.0 * (1.0 - acc)) < 1e-12

    @given(state_maps)
    @settings(max_examples=50, deadline=None)
    def test_perfect_prediction(self, truth):
        if truth:
            assert accuracy(truth, truth) == 1.0
            assert mean_absolute_error(truth, truth) == 0.0
            assert r_squared(truth, truth) == 1.0

    @given(state_maps, state_maps)
    @settings(max_examples=100, deadline=None)
    def test_r_squared_at_most_one(self, predicted, truth):
        assert r_squared(predicted, truth) <= 1.0
