"""Property-based tests shared by the baseline diffusion models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffusion.ic import ICModel
from repro.diffusion.pic import PICModel
from repro.diffusion.sir import SIRModel
from repro.diffusion.voter import SignedVoterModel
from repro.graphs.signed_digraph import SignedDiGraph
from repro.types import NodeState

MODELS = [
    ICModel(),
    PICModel(),
    SIRModel(recovery_probability=0.5),
    SignedVoterModel(rounds=5),
]


@st.composite
def worlds(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    graph = SignedDiGraph()
    graph.add_nodes(range(n))
    for _ in range(draw(st.integers(min_value=0, max_value=25))):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            graph.add_edge(
                u,
                v,
                draw(st.sampled_from([-1, 1])),
                draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False)),
            )
    seed_node = draw(st.integers(min_value=0, max_value=n - 1))
    state = draw(st.sampled_from([NodeState.POSITIVE, NodeState.NEGATIVE]))
    rng_seed = draw(st.integers(min_value=0, max_value=2**31))
    return graph, {seed_node: state}, rng_seed


class TestSharedInvariants:
    @given(worlds(), st.sampled_from(range(len(MODELS))))
    @settings(max_examples=80, deadline=None)
    def test_final_states_are_opinions(self, world, model_index):
        graph, seeds, rng_seed = world
        result = MODELS[model_index].run(graph, seeds, rng=rng_seed)
        assert all(state.is_active for state in result.final_states.values())

    @given(worlds(), st.sampled_from(range(len(MODELS))))
    @settings(max_examples=80, deadline=None)
    def test_seeds_always_infected(self, world, model_index):
        graph, seeds, rng_seed = world
        result = MODELS[model_index].run(graph, seeds, rng=rng_seed)
        for node in seeds:
            assert result.final_states[node].is_active

    @given(worlds(), st.sampled_from(range(len(MODELS))))
    @settings(max_examples=80, deadline=None)
    def test_infection_respects_reachability(self, world, model_index):
        from repro.graphs.paths import reachable_from

        graph, seeds, rng_seed = world
        result = MODELS[model_index].run(graph, seeds, rng=rng_seed)
        reachable = set()
        for node in seeds:
            reachable |= reachable_from(graph, node)
        assert set(result.infected_nodes()) <= reachable

    @given(worlds(), st.sampled_from(range(len(MODELS))))
    @settings(max_examples=60, deadline=None)
    def test_determinism(self, world, model_index):
        graph, seeds, rng_seed = world
        model = MODELS[model_index]
        a = model.run(graph, seeds, rng=rng_seed)
        b = model.run(graph, seeds, rng=rng_seed)
        assert a.final_states == b.final_states

    @given(worlds())
    @settings(max_examples=60, deadline=None)
    def test_ic_and_pic_never_flip(self, world):
        graph, seeds, rng_seed = world
        for model in (ICModel(), PICModel()):
            result = model.run(graph, seeds, rng=rng_seed)
            assert not any(event.was_flip for event in result.events)
            # One activation event per infected node (incl. the seed).
            assert len(result.events) == len(result.final_states)
