"""Merged metrics are invariant under serial vs parallel execution.

Every chunk — worker-side or in-process — records into its own
:class:`~repro.obs.metrics.MetricsRecorder` and the parent absorbs the
snapshots through commutative merges. Since each trial derives its RNG
from ``(base_seed, model, trial)`` alone, the *work done* per trial is
identical for any worker count, so the merged counters and gauges must
be bit-identical between ``workers=1`` and ``workers=4`` — only measured
durations may differ.
"""

import pytest

from repro.diffusion.mfc import MFCModel
from repro.diffusion.monte_carlo import simulate_many
from repro.graphs.generators.random_graphs import signed_erdos_renyi
from repro.obs import MetricsRecorder
from repro.runtime.config import RuntimeConfig
from repro.types import NodeState

# Execution-shape counters legitimately depend on the fan-out (a serial
# run is one chunk; a parallel run is several). Everything else must match.
SHAPE_COUNTERS = {"runtime.chunks"}


def run_workload(workers: int):
    graph = signed_erdos_renyi(
        80, 0.06, positive_probability=0.75, weight_range=(0.05, 0.5), rng=13
    )
    seeds = {0: NodeState.POSITIVE, 3: NodeState.NEGATIVE, 11: NodeState.POSITIVE}
    recorder = MetricsRecorder()
    runtime = RuntimeConfig(workers=workers)
    results = simulate_many(
        MFCModel(alpha=3.0),
        graph,
        seeds,
        trials=12,
        base_seed=21,
        runtime=runtime,
        recorder=recorder,
    )
    return results, recorder.metrics


@pytest.fixture(scope="module")
def serial_and_parallel():
    serial = run_workload(workers=1)
    parallel = run_workload(workers=4)
    return serial, parallel


def test_results_bit_identical(serial_and_parallel):
    (serial_results, _), (parallel_results, _) = serial_and_parallel
    assert len(serial_results) == len(parallel_results) == 12
    for a, b in zip(serial_results, parallel_results):
        assert a.events == b.events
        assert a.final_states == b.final_states
        assert a.rounds == b.rounds


def test_counters_bit_identical(serial_and_parallel):
    (_, serial), (_, parallel) = serial_and_parallel
    scrub = lambda m: {
        k: v for k, v in m.counters.items() if k not in SHAPE_COUNTERS
    }
    assert scrub(serial) == scrub(parallel)
    # and the workload actually exercised the kernel + runtime layers
    assert serial.counters["kernel.mfc.cascades"] == 12
    assert serial.counters["runtime.trials"] == 12


def test_gauges_bit_identical(serial_and_parallel):
    (_, serial), (_, parallel) = serial_and_parallel
    assert set(serial.gauges) == set(parallel.gauges)
    for name, stat in serial.gauges.items():
        other = parallel.gauges[name]
        assert (stat.count, stat.total, stat.min, stat.max) == (
            other.count,
            other.total,
            other.min,
            other.max,
        ), name


def test_timer_call_counts_identical(serial_and_parallel):
    (_, serial), (_, parallel) = serial_and_parallel
    assert {name: stat.count for name, stat in serial.timers.items()} == {
        name: stat.count for name, stat in parallel.timers.items()
    }


def test_parallel_run_really_fanned_out(serial_and_parallel):
    (_, serial), (_, parallel) = serial_and_parallel
    assert serial.counters["runtime.chunks"] == 1
    assert parallel.counters["runtime.chunks"] > 1
