"""Batched-vs-per-trial equivalence gates for the Monte-Carlo tier.

The batched numpy sweep runs all T cascades as one ``(T, n)`` matrix
with a single RNG stream sliced across trials, so — like the
single-cascade numpy backend (``docs/algorithms.md`` §12) — it is held
to the *statistical* identity bar, pinned here through the same
invariants:

* under ``p = 1`` (saturated weights, ``allow_flips=False`` for MFC)
  every per-trial count and final state is topology-determined — the
  batched python and numpy tiers must agree exactly, trial by trial;
* under ``p = 0`` nothing spreads: seeds only, one round of failed
  attempts, identical attempt accounting;
* on random-weight graphs the per-trial count distributions must agree
  in mean within a tolerance far wider than the batch standard error.

The batched *python* tier is bit-identical to ``simulate_many`` by
construction; that stronger bar is pinned in
``tests/unit/test_mc_batch.py`` and the bench ``--tiny`` gate.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

np = pytest.importorskip("numpy")

from repro.graphs.generators.random_graphs import (
    signed_erdos_renyi,
    signed_preferential_attachment,
)
from repro.kernel import compile_graph, run_ic_batch, run_mfc_batch
from repro.kernel.cascade import check_seeds_compiled
from repro.types import NodeState
from repro.utils.rng import derive_seed


def _seeds(graph, count=3):
    nodes = sorted(graph.nodes(), key=repr)[:count]
    return {
        node: NodeState.POSITIVE if i % 2 == 0 else NodeState.NEGATIVE
        for i, node in enumerate(nodes)
    }


def _trial_seeds(base_seed, namespace, trials):
    return [derive_seed(base_seed, namespace, trial) for trial in range(trials)]


def _saturated_graphs():
    """Graphs whose every weight is 1.0 — the ``p = 1`` regime."""
    yield signed_erdos_renyi(
        50, 0.08, positive_probability=0.7, weight_range=(1.0, 1.0), rng=11
    )
    yield signed_erdos_renyi(
        80, 0.04, positive_probability=0.3, weight_range=(1.0, 1.0), rng=12
    )
    yield signed_preferential_attachment(
        60, out_degree=3, positive_probability=0.8, weight_range=(1.0, 1.0), rng=13
    )


def _dead_graphs():
    """Graphs whose every weight is 0.0 — the ``p = 0`` regime."""
    yield signed_erdos_renyi(
        40, 0.10, positive_probability=0.6, weight_range=(0.0, 0.0), rng=21
    )
    yield signed_preferential_attachment(
        50, out_degree=2, positive_probability=0.4, weight_range=(0.0, 0.0), rng=22
    )


class TestExactBatchInvariants:
    """Deterministic regimes where both batch tiers must agree exactly."""

    @pytest.mark.parametrize("graph_index", range(3))
    def test_mfc_p1_per_trial_counts_and_states(self, graph_index):
        graph = list(_saturated_graphs())[graph_index]
        compiled = compile_graph(graph)
        validated = check_seeds_compiled(compiled, _seeds(graph))
        trial_seeds = _trial_seeds(5, "mfc", 6)

        def batch(backend):
            # allow_flips=False keeps p=1 MFC fully topology-determined
            # (flip chains under p=1 would re-introduce order
            # sensitivity).
            return run_mfc_batch(
                compiled,
                validated,
                trial_seeds,
                alpha=1.0,
                allow_flips=False,
                max_rounds=10**9,
                backend=backend,
                record_states=True,
            )

        py = batch("python")
        nx = batch("numpy")
        assert nx.infected == py.infected
        assert nx.positive == py.positive
        assert nx.negative == py.negative
        assert nx.rounds == py.rounds
        assert nx.attempts == py.attempts
        for trial in range(len(trial_seeds)):
            assert nx.final_states(trial) == py.final_states(trial)

    @pytest.mark.parametrize("graph_index", range(3))
    def test_ic_p1_per_trial_counts_and_states(self, graph_index):
        graph = list(_saturated_graphs())[graph_index]
        compiled = compile_graph(graph)
        validated = check_seeds_compiled(compiled, _seeds(graph))
        trial_seeds = _trial_seeds(6, "ic", 6)

        def batch(backend):
            return run_ic_batch(
                compiled,
                validated,
                trial_seeds,
                propagate_signs=True,
                backend=backend,
                record_states=True,
            )

        py = batch("python")
        nx = batch("numpy")
        assert nx.infected == py.infected
        assert nx.positive == py.positive
        assert nx.rounds == py.rounds
        assert nx.attempts == py.attempts
        for trial in range(len(trial_seeds)):
            assert nx.final_states(trial) == py.final_states(trial)

    @pytest.mark.parametrize("graph_index", range(2))
    def test_p0_nothing_spreads(self, graph_index):
        graph = list(_dead_graphs())[graph_index]
        compiled = compile_graph(graph)
        validated = check_seeds_compiled(compiled, _seeds(graph))
        trial_seeds = _trial_seeds(7, "mfc", 5)

        def batch(backend):
            return run_mfc_batch(
                compiled,
                validated,
                trial_seeds,
                alpha=3.0,
                allow_flips=True,
                max_rounds=10**9,
                backend=backend,
                record_states=True,
            )

        py = batch("python")
        nx = batch("numpy")
        seed_count = len(validated)
        assert py.infected == [seed_count] * 5
        assert nx.infected == [seed_count] * 5
        assert nx.flips == py.flips == [0] * 5
        assert nx.attempts == py.attempts
        assert nx.rounds == py.rounds
        for trial in range(5):
            assert nx.final_states(trial) == validated
            assert py.final_states(trial) == validated


class TestBatchSpreadDistribution:
    """Random-weight graphs: batched tiers must agree in distribution."""

    @given(st.integers(min_value=0, max_value=1_000))
    @settings(max_examples=8, deadline=None)
    def test_mean_spread_within_tolerance(self, base_seed):
        graph = signed_erdos_renyi(
            120, 0.05, positive_probability=0.7, weight_range=(0.1, 0.6), rng=41
        )
        compiled = compile_graph(graph)
        validated = check_seeds_compiled(compiled, _seeds(graph))
        trial_seeds = _trial_seeds(base_seed, "mfc", 40)

        def mean_spread(backend):
            summary = run_mfc_batch(
                compiled,
                validated,
                trial_seeds,
                alpha=2.0,
                allow_flips=True,
                max_rounds=10**9,
                backend=backend,
            )
            return sum(summary.infected) / summary.trials

        mean_py = mean_spread("python")
        mean_np = mean_spread("numpy")
        # Means over 40 cascades on this workload have a standard error
        # of ~1 node; 20% relative (floor 4 nodes) is many sigmas wide
        # while still catching any systematic probability distortion.
        assert abs(mean_py - mean_np) <= max(4.0, 0.2 * mean_py)

    @given(st.integers(min_value=0, max_value=1_000))
    @settings(max_examples=6, deadline=None)
    def test_mean_flips_within_tolerance(self, base_seed):
        graph = signed_erdos_renyi(
            100, 0.06, positive_probability=0.6, weight_range=(0.2, 0.7), rng=43
        )
        compiled = compile_graph(graph)
        validated = check_seeds_compiled(compiled, _seeds(graph))
        trial_seeds = _trial_seeds(base_seed, "mfc", 40)

        def means(backend):
            summary = run_mfc_batch(
                compiled,
                validated,
                trial_seeds,
                alpha=2.5,
                allow_flips=True,
                max_rounds=10**9,
                backend=backend,
            )
            return (
                sum(summary.infected) / summary.trials,
                sum(summary.flips) / summary.trials,
            )

        spread_py, flips_py = means("python")
        spread_np, flips_np = means("numpy")
        assert abs(spread_py - spread_np) <= max(4.0, 0.2 * spread_py)
        # Flip counts are noisier than spread (every re-entry re-rolls);
        # a 30% relative band with a floor of 6 still sits far outside
        # the batch standard error on this workload.
        assert abs(flips_py - flips_np) <= max(6.0, 0.3 * flips_py)
