"""Property-based tests for the Edmonds branching extractor.

The key property — exact optimality — is certified against a brute-force
enumeration of all branchings on small random graphs, for both the
minimum-roots criterion and the likelihood maximisation among
minimum-root branchings.
"""

import itertools
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arborescence import maximum_spanning_branching
from repro.core.cascade_forest import split_branching_into_trees
from repro.graphs.generators.trees import is_arborescence
from repro.graphs.signed_digraph import SignedDiGraph


@st.composite
def small_digraphs(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    graph = SignedDiGraph()
    graph.add_nodes(range(n))
    for u in range(n):
        for v in range(n):
            if u != v and draw(st.booleans()):
                weight = draw(
                    st.floats(min_value=0.01, max_value=1.0, allow_nan=False)
                )
                graph.add_edge(u, v, draw(st.sampled_from([-1, 1])), weight)
    return graph


def brute_force_best_branching(graph):
    """(min_roots, max_log_score) over all valid branchings."""
    nodes = graph.nodes()
    choices = []
    for v in nodes:
        in_edges = [(u, v) for u, _, _ in graph.in_edges(v)]
        choices.append(in_edges + [None])
    best_key = None
    for combo in itertools.product(*choices):
        edges = [e for e in combo if e]
        parent = {v: u for (u, v) in edges}
        acyclic = True
        for start in nodes:
            seen = set()
            node = start
            while node in parent:
                if node in seen:
                    acyclic = False
                    break
                seen.add(node)
                node = parent[node]
            if not acyclic:
                break
        if not acyclic:
            continue
        roots = len(nodes) - len(edges)
        score = sum(math.log(max(graph.weight(u, v), 1e-12)) for (u, v) in edges)
        key = (-roots, score)
        if best_key is None or key > best_key:
            best_key = key
    return best_key


class TestBranchingProperties:
    @given(small_digraphs())
    @settings(max_examples=60, deadline=None)
    def test_in_degree_at_most_one(self, graph):
        forest = maximum_spanning_branching(graph)
        assert all(forest.in_degree(v) <= 1 for v in forest.nodes())

    @given(small_digraphs())
    @settings(max_examples=60, deadline=None)
    def test_splits_into_arborescences_covering_all_nodes(self, graph):
        forest = maximum_spanning_branching(graph)
        trees = split_branching_into_trees(forest)
        assert sum(t.number_of_nodes() for t in trees) == graph.number_of_nodes()
        assert all(is_arborescence(t) for t in trees)

    @given(small_digraphs())
    @settings(max_examples=60, deadline=None)
    def test_edges_come_from_input(self, graph):
        forest = maximum_spanning_branching(graph)
        for u, v, data in forest.iter_edges():
            assert graph.has_edge(u, v)
            assert graph.weight(u, v) == data.weight
            assert graph.sign(u, v) is data.sign

    @given(small_digraphs())
    @settings(max_examples=50, deadline=None)
    def test_exact_optimality_vs_brute_force(self, graph):
        forest = maximum_spanning_branching(graph)
        edges = [(u, v) for u, v, _ in forest.iter_edges()]
        roots = graph.number_of_nodes() - len(edges)
        score = sum(math.log(max(graph.weight(u, v), 1e-12)) for (u, v) in edges)
        best = brute_force_best_branching(graph)
        assert best is not None
        assert -roots == best[0]
        assert score == (
            best[1]
        ) or abs(score - best[1]) < 1e-9
