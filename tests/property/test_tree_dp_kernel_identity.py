"""Compiled TreeDP kernel ≡ recursive solver ≡ brute force.

The compiled flat-array kernel (:mod:`repro.kernel.tree_dp`) promises
**bit-identity** with the recursive dict-memo solver: same ``score``
floats, same ``initiators`` dicts, for every feasible budget. Brute
force certifies optimality too, but only approximately — its objective
sums per-node terms in a different order, so last-bit ULP differences
are expected there.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.binarize import binarize_cascade_tree
from repro.core.tree_dp import KIsomitBTSolver, brute_force_k_isomit
from repro.graphs.generators.trees import random_general_tree, star_graph
from repro.graphs.signed_digraph import SignedDiGraph
from repro.types import NodeState
from repro.utils.rng import spawn_rng


@st.composite
def stated_trees(draw):
    """Random general trees (fan-outs force dummies) with random states."""
    size = draw(st.integers(min_value=1, max_value=12))
    max_children = draw(st.integers(min_value=2, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    tree = random_general_tree(size, max_children=max_children, rng=seed)
    rng = spawn_rng(seed, "states")
    for node in tree.nodes():
        tree.set_state(
            node, NodeState.POSITIVE if rng.random() < 0.6 else NodeState.NEGATIVE
        )
    alpha = draw(st.floats(min_value=1.0, max_value=4.0, allow_nan=False))
    return tree, alpha


class TestKernelIdentity:
    @given(stated_trees())
    @settings(max_examples=80, deadline=None)
    def test_kernel_bit_identical_to_recursive_all_k(self, world):
        tree, alpha = world
        binary = binarize_cascade_tree(tree, alpha=alpha)
        reference = KIsomitBTSolver(binary, use_kernel=False)
        compiled = KIsomitBTSolver(binary)
        # Every feasible budget, including k=0 and k=num_real.
        for k in range(0, binary.num_real + 1):
            ref = reference.solve(k)
            ker = compiled.solve(k)
            assert ker.k == ref.k
            assert ker.score == ref.score  # bitwise, no tolerance
            assert ker.initiators == ref.initiators

    @given(stated_trees())
    @settings(max_examples=60, deadline=None)
    def test_curve_matches_per_k_solves(self, world):
        tree, alpha = world
        binary = binarize_cascade_tree(tree, alpha=alpha)
        reference = KIsomitBTSolver(binary, use_kernel=False)
        curve = KIsomitBTSolver(binary).solve_curve(binary.num_real)
        assert len(curve) == binary.num_real
        for k, result in enumerate(curve, start=1):
            ref = reference.solve(k)
            assert result.k == k
            assert result.score == ref.score
            assert result.initiators == ref.initiators

    @given(stated_trees(), st.integers(min_value=1, max_value=3))
    @settings(max_examples=50, deadline=None)
    def test_kernel_optimal_vs_brute_force(self, world, k):
        tree, alpha = world
        binary = binarize_cascade_tree(tree, alpha=alpha)
        budget = min(k, binary.num_real)
        dp = KIsomitBTSolver(binary).solve(budget)
        brute = brute_force_k_isomit(binary, budget, scoring="nearest")
        # Brute force sums in subset-enumeration order: approx only.
        assert abs(dp.score - brute.score) < 1e-9


class TestKernelEdgeCases:
    def _identical(self, binary, k):
        ref = KIsomitBTSolver(binary, use_kernel=False).solve(k)
        ker = KIsomitBTSolver(binary).solve(k)
        assert ker.score == ref.score
        assert ker.initiators == ref.initiators
        return ker

    def test_lone_root(self):
        tree = SignedDiGraph()
        tree.add_node(0, NodeState.POSITIVE)
        binary = binarize_cascade_tree(tree, alpha=3.0)
        assert self._identical(binary, 0).initiators == {}
        assert self._identical(binary, 1).initiators == {0: NodeState.POSITIVE}

    def test_all_dummy_children_star(self):
        # A 6-leaf star forces a full dummy fan-out layer under the hub.
        tree = star_graph(7, sign=1, weight=0.5)
        for node in tree.nodes():
            tree.set_state(node, NodeState.POSITIVE)
        binary = binarize_cascade_tree(tree, alpha=3.0)
        assert binary.size() > binary.num_real  # dummies present
        for k in range(0, binary.num_real + 1):
            self._identical(binary, k)
