"""Property-based tests for the graph substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.signed_digraph import SignedDiGraph
from repro.graphs.stats import positive_fraction, reciprocity
from repro.types import Sign


@st.composite
def signed_graphs(draw, max_nodes: int = 12):
    """Random small signed digraphs."""
    n = draw(st.integers(min_value=0, max_value=max_nodes))
    graph = SignedDiGraph()
    graph.add_nodes(range(n))
    if n >= 2:
        num_edges = draw(st.integers(min_value=0, max_value=min(30, n * (n - 1))))
        for _ in range(num_edges):
            u = draw(st.integers(min_value=0, max_value=n - 1))
            v = draw(st.integers(min_value=0, max_value=n - 1))
            if u == v:
                continue
            sign = draw(st.sampled_from([-1, 1]))
            weight = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
            graph.add_edge(u, v, sign, weight)
    return graph


class TestStructuralInvariants:
    @given(signed_graphs())
    @settings(max_examples=60, deadline=None)
    def test_degree_sums_equal_edge_count(self, graph):
        total_out = sum(graph.out_degree(v) for v in graph.nodes())
        total_in = sum(graph.in_degree(v) for v in graph.nodes())
        assert total_out == total_in == graph.number_of_edges()

    @given(signed_graphs())
    @settings(max_examples=60, deadline=None)
    def test_edges_listing_consistent_with_lookup(self, graph):
        for u, v, data in graph.edges():
            assert graph.has_edge(u, v)
            assert graph.edge(u, v) is data

    @given(signed_graphs())
    @settings(max_examples=60, deadline=None)
    def test_succ_pred_are_mirror_views(self, graph):
        for u, v, _ in graph.iter_edges():
            assert u in graph.predecessors(v)
            assert v in graph.successors(u)

    @given(signed_graphs())
    @settings(max_examples=40, deadline=None)
    def test_reverse_is_involution(self, graph):
        double = graph.reverse().reverse()
        assert {(u, v) for u, v, _ in double.iter_edges()} == {
            (u, v) for u, v, _ in graph.iter_edges()
        }
        for u, v, data in graph.iter_edges():
            assert double.sign(u, v) is data.sign
            assert double.weight(u, v) == data.weight

    @given(signed_graphs())
    @settings(max_examples=40, deadline=None)
    def test_reverse_preserves_stats(self, graph):
        rev = graph.reverse()
        assert positive_fraction(rev) == positive_fraction(graph)
        assert reciprocity(rev) == reciprocity(graph)

    @given(signed_graphs())
    @settings(max_examples=40, deadline=None)
    def test_copy_equals_original(self, graph):
        clone = graph.copy()
        assert clone.number_of_nodes() == graph.number_of_nodes()
        assert clone.number_of_edges() == graph.number_of_edges()
        for u, v, data in graph.iter_edges():
            assert clone.sign(u, v) is data.sign
            assert clone.weight(u, v) == data.weight

    @given(signed_graphs(), st.integers(min_value=0, max_value=11))
    @settings(max_examples=40, deadline=None)
    def test_remove_node_removes_all_incident_edges(self, graph, node):
        if not graph.has_node(node):
            return
        graph.remove_node(node)
        assert not graph.has_node(node)
        for u, v, _ in graph.iter_edges():
            assert u != node and v != node

    @given(signed_graphs())
    @settings(max_examples=40, deadline=None)
    def test_subgraph_edge_subset(self, graph):
        nodes = [n for n in graph.nodes() if isinstance(n, int) and n % 2 == 0]
        sub = graph.subgraph(nodes)
        for u, v, _ in sub.iter_edges():
            assert graph.has_edge(u, v)
            assert u in nodes and v in nodes

    @given(signed_graphs())
    @settings(max_examples=40, deadline=None)
    def test_sign_partition(self, graph):
        positives = len(graph.positive_edges())
        negatives = len(graph.negative_edges())
        assert positives + negatives == graph.number_of_edges()
