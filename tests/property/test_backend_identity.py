"""python-vs-numpy backend equivalence gates (``docs/algorithms.md`` §12).

The numpy cascade backend is *statistical*-tier: its frontier-batched
rounds consume the RNG in a different order than the reference stream,
so draw-for-draw equality is off the table by design. What must hold
instead — and what this module pins — are the exact-graph invariants
that do not depend on the draw order:

* under ``p = 1`` every attempt succeeds, so the reachable set, the
  per-node final states, the attempt accounting and the round count are
  fully determined by the topology — both backends must agree exactly;
* under ``p = 0`` nothing ever succeeds — seeds only, and exactly one
  round of (failed) attempts from them;
* Monte-Carlo spread estimates must agree in distribution; the mean
  infected count over a trial batch is compared within a tolerance far
  wider than the standard error of the batch.

The numpy TreeDP sweep, by contrast, consumes no randomness and
preserves the interpreted sweep's float-expression order, so it is held
to the full **bit**-identity bar: same score floats, same initiator
decisions, for every budget.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

np = pytest.importorskip("numpy")

from repro.core.binarize import binarize_cascade_tree
from repro.core.tree_dp import KIsomitBTSolver
from repro.graphs.generators.random_graphs import (
    signed_erdos_renyi,
    signed_preferential_attachment,
)
from repro.graphs.generators.trees import random_general_tree
from repro.kernel import compile_graph, run_ic_compiled, run_mfc_compiled
from repro.kernel.backends import resolve_backend
from repro.kernel.cascade import check_seeds_compiled
from repro.types import NodeState
from repro.utils.rng import derive_seed, spawn_rng


def _seeds(graph, rng, count=3):
    nodes = sorted(graph.nodes(), key=repr)[:count]
    return {
        node: NodeState.POSITIVE if i % 2 == 0 else NodeState.NEGATIVE
        for i, node in enumerate(nodes)
    }


def _saturated_graphs():
    """Graphs whose every weight is 1.0 — the ``p = 1`` regime."""
    yield signed_erdos_renyi(
        50, 0.08, positive_probability=0.7, weight_range=(1.0, 1.0), rng=11
    )
    yield signed_erdos_renyi(
        80, 0.04, positive_probability=0.3, weight_range=(1.0, 1.0), rng=12
    )
    yield signed_preferential_attachment(
        60, out_degree=3, positive_probability=0.8, weight_range=(1.0, 1.0), rng=13
    )


def _dead_graphs():
    """Graphs whose every weight is 0.0 — the ``p = 0`` regime."""
    yield signed_erdos_renyi(
        40, 0.10, positive_probability=0.6, weight_range=(0.0, 0.0), rng=21
    )
    yield signed_preferential_attachment(
        50, out_degree=2, positive_probability=0.4, weight_range=(0.0, 0.0), rng=22
    )


class TestExactGraphInvariants:
    """Deterministic regimes where both tiers must agree exactly."""

    @pytest.mark.parametrize("graph_index", range(3))
    def test_mfc_p1_reachability_and_attempts(self, graph_index):
        graph = list(_saturated_graphs())[graph_index]
        compiled = compile_graph(graph)
        validated = check_seeds_compiled(compiled, _seeds(graph, None))
        py = resolve_backend("python")
        nx = resolve_backend("numpy")
        # allow_flips=False keeps p=1 MFC fully topology-determined
        # (flip chains under p=1 would re-introduce order sensitivity).
        rp, tried = py.mfc_cascade(
            compiled, validated, random.Random(5), 1.0, False, 10**9
        )
        rn, attempts = nx.mfc_cascade(
            compiled, validated, random.Random(5), 1.0, False, 10**9
        )
        assert rn.final_states == rp.final_states
        assert set(rn.final_states) == set(rp.final_states)
        assert attempts == sum(tried)
        assert rn.rounds == rp.rounds

    @pytest.mark.parametrize("graph_index", range(3))
    def test_ic_p1_reachability_and_attempts(self, graph_index):
        graph = list(_saturated_graphs())[graph_index]
        compiled = compile_graph(graph)
        validated = check_seeds_compiled(compiled, _seeds(graph, None))
        py = resolve_backend("python")
        nx = resolve_backend("numpy")
        rp, tried = py.ic_cascade(compiled, validated, random.Random(6), True)
        rn, attempts = nx.ic_cascade(compiled, validated, random.Random(6), True)
        assert rn.final_states == rp.final_states
        assert attempts == sum(tried)
        assert rn.rounds == rp.rounds

    @pytest.mark.parametrize("graph_index", range(2))
    def test_p0_nothing_spreads(self, graph_index):
        graph = list(_dead_graphs())[graph_index]
        compiled = compile_graph(graph)
        validated = check_seeds_compiled(compiled, _seeds(graph, None))
        py = resolve_backend("python")
        nx = resolve_backend("numpy")
        rp, tried = py.mfc_cascade(
            compiled, validated, random.Random(7), 3.0, True, 10**9
        )
        rn, attempts = nx.mfc_cascade(
            compiled, validated, random.Random(7), 3.0, True, 10**9
        )
        assert rn.final_states == validated
        assert rp.final_states == validated
        assert attempts == sum(tried)
        assert rn.rounds == rp.rounds

    def test_dispatch_wrappers_agree_with_backends(self):
        """`run_*_compiled(backend=...)` routes to the engine it names."""
        graph = signed_erdos_renyi(40, 0.1, weight_range=(1.0, 1.0), rng=31)
        compiled = compile_graph(graph)
        validated = check_seeds_compiled(compiled, _seeds(graph, None))
        via_mfc = run_mfc_compiled(
            compiled, validated, random.Random(1), 1.0, False, 10**9, backend="numpy"
        )
        via_ic = run_ic_compiled(
            compiled, validated, random.Random(1), True, backend="numpy"
        )
        direct = resolve_backend("numpy")
        assert (
            via_mfc.final_states
            == direct.mfc_cascade(
                compiled, validated, random.Random(1), 1.0, False, 10**9
            )[0].final_states
        )
        assert (
            via_ic.final_states
            == direct.ic_cascade(compiled, validated, random.Random(1), True)[
                0
            ].final_states
        )

    def test_trace_free_runs_match_recorded_runs(self):
        """`record_events=False` changes the trace, never the cascade.

        The numpy backend derives its bit generator deterministically
        from the caller's `random.Random`, so the same seed replays the
        same cascade — with and without event materialisation.
        """
        graph = signed_erdos_renyi(60, 0.15, weight_range=(0.3, 0.9), rng=41)
        compiled = compile_graph(graph)
        validated = check_seeds_compiled(compiled, _seeds(graph, None))
        for backend in ("python", "numpy"):
            recorded = run_mfc_compiled(
                compiled, validated, random.Random(9), 2.0, True, 10**9,
                backend=backend,
            )
            bare = run_mfc_compiled(
                compiled, validated, random.Random(9), 2.0, True, 10**9,
                backend=backend, record_events=False,
            )
            assert bare.events == []
            assert bare.final_states == recorded.final_states
            assert bare.rounds == recorded.rounds
            recorded_ic = run_ic_compiled(
                compiled, validated, random.Random(10), True, backend=backend
            )
            bare_ic = run_ic_compiled(
                compiled, validated, random.Random(10), True, backend=backend,
                record_events=False,
            )
            assert bare_ic.events == []
            assert bare_ic.final_states == recorded_ic.final_states
            assert bare_ic.rounds == recorded_ic.rounds


@st.composite
def stated_trees(draw):
    """Random general trees with deterministic states and weights."""
    size = draw(st.integers(min_value=1, max_value=40))
    max_children = draw(st.integers(min_value=2, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    tree = random_general_tree(size, max_children=max_children, rng=seed)
    rng = spawn_rng(seed, "backend-identity-states")
    for node in tree.nodes():
        tree.set_state(
            node, NodeState.POSITIVE if rng.random() < 0.6 else NodeState.NEGATIVE
        )
    alpha = draw(st.floats(min_value=1.0, max_value=4.0, allow_nan=False))
    return tree, alpha


class TestTreeDPBitIdentity:
    """The numpy sweep has no RNG: full bit-identity, decisions included."""

    @given(stated_trees())
    @settings(max_examples=40, deadline=None)
    def test_scores_and_decisions_bit_identical(self, world):
        tree, alpha = world
        binary = binarize_cascade_tree(tree, alpha=alpha)
        reference = KIsomitBTSolver(binary, backend="python")
        vectorized = KIsomitBTSolver(binary, backend="numpy")
        ref_curve = reference.solve_curve(binary.num_real)
        vec_curve = vectorized.solve_curve(binary.num_real)
        assert len(vec_curve) == len(ref_curve)
        for ref, vec in zip(ref_curve, vec_curve):
            assert vec.k == ref.k
            assert vec.score == ref.score  # bitwise, no tolerance
            assert vec.initiators == ref.initiators  # same argmax decisions

    @given(stated_trees())
    @settings(max_examples=20, deadline=None)
    def test_memo_accounting_matches(self, world):
        tree, alpha = world
        binary = binarize_cascade_tree(tree, alpha=alpha)
        reference = KIsomitBTSolver(binary, backend="python")
        vectorized = KIsomitBTSolver(binary, backend="numpy")
        reference.solve_curve(binary.num_real)
        vectorized.solve_curve(binary.num_real)
        assert vectorized.memo_size() == reference.memo_size()


class TestSpreadDistribution:
    """Monte-Carlo estimates must agree in distribution across tiers."""

    @given(st.integers(min_value=0, max_value=1_000))
    @settings(max_examples=8, deadline=None)
    def test_mean_spread_within_tolerance(self, base_seed):
        graph = signed_erdos_renyi(
            120, 0.05, positive_probability=0.7, weight_range=(0.1, 0.6), rng=41
        )
        compiled = compile_graph(graph)
        validated = check_seeds_compiled(compiled, _seeds(graph, None))
        trials = 40

        def mean_spread(backend):
            total = 0
            for trial in range(trials):
                result = run_mfc_compiled(
                    compiled,
                    validated,
                    spawn_rng(derive_seed(base_seed, "spread", trial)),
                    alpha=2.0,
                    allow_flips=True,
                    max_rounds=10**9,
                    backend=backend,
                )
                total += len(result.final_states)
            return total / trials

        mean_py = mean_spread("python")
        mean_np = mean_spread("numpy")
        # Means over 40 cascades on this workload have a standard error
        # of ~1 node; 20% relative (floor 4 nodes) is many sigmas wide
        # while still catching any systematic probability distortion.
        assert abs(mean_py - mean_np) <= max(4.0, 0.2 * mean_py)
