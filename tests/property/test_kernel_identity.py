"""Randomized cross-validation: CSR kernel == reference simulator.

The kernel's whole contract is *bit*-identity with the reference
dict-of-dict simulators — same activation events (order included), same
final states (dict insertion order included), same round count, same
RNG consumption — over random signed graphs × α ∈ {1, 3} × flips
on/off × seeds. Any divergence here means the kernel changed model
semantics, not just speed.
"""

import random

import pytest

from repro.diffusion.ic import ICModel
from repro.diffusion.mfc import MFCModel
from repro.graphs.generators.random_graphs import (
    signed_erdos_renyi,
    signed_preferential_attachment,
    signed_watts_strogatz,
)
from repro.types import NodeState
from repro.utils.rng import spawn_rng


def random_graphs():
    """A spread of topologies, densities, sign mixes and weight regimes."""
    yield signed_erdos_renyi(
        40, 0.10, positive_probability=0.7, weight_range=(0.0, 0.7), rng=1
    )
    yield signed_erdos_renyi(
        70, 0.05, positive_probability=0.3, weight_range=(0.2, 1.0), rng=2
    )
    yield signed_preferential_attachment(
        60, out_degree=3, positive_probability=0.8, weight_range=(0.0, 0.5), rng=3
    )
    yield signed_watts_strogatz(
        50, k=4, rewire_probability=0.2, positive_probability=0.5, rng=4
    )


def plant_seeds(graph, rng, count=4):
    nodes = sorted(graph.nodes())
    random_source = spawn_rng(rng, "kernel-identity-seeds")
    chosen = random_source.sample(nodes, min(count, len(nodes)))
    return {
        node: NodeState.POSITIVE if i % 2 else NodeState.NEGATIVE
        for i, node in enumerate(chosen)
    }


def assert_identical(fast, slow):
    assert fast.seeds == slow.seeds
    assert fast.events == slow.events
    assert fast.final_states == slow.final_states
    # Insertion order too: downstream JSON encodings walk the dict.
    assert list(fast.final_states) == list(slow.final_states)
    assert fast.rounds == slow.rounds


class TestMFCKernelIdentity:
    @pytest.mark.parametrize("alpha", [1.0, 3.0])
    @pytest.mark.parametrize("allow_flips", [True, False])
    def test_bit_identical_over_random_graphs(self, alpha, allow_flips):
        for graph_index, graph in enumerate(random_graphs()):
            seeds = plant_seeds(graph, graph_index)
            for trial in range(6):
                fast = MFCModel(alpha=alpha, allow_flips=allow_flips).run(
                    graph, seeds, rng=trial
                )
                slow = MFCModel(
                    alpha=alpha, allow_flips=allow_flips, use_kernel=False
                ).run(graph, seeds, rng=trial)
                assert_identical(fast, slow)

    def test_parent_generator_left_in_identical_state(self):
        """Passing a live Random must consume it identically on both paths."""
        graph = signed_erdos_renyi(30, 0.12, rng=9)
        seeds = plant_seeds(graph, 9)
        fast_rng, slow_rng = random.Random(123), random.Random(123)
        fast = MFCModel(alpha=3.0).run(graph, seeds, rng=fast_rng)
        slow = MFCModel(alpha=3.0, use_kernel=False).run(graph, seeds, rng=slow_rng)
        assert_identical(fast, slow)
        assert fast_rng.getstate() == slow_rng.getstate()

    def test_max_rounds_cap_respected_identically(self):
        graph = signed_erdos_renyi(25, 0.2, positive_probability=1.0, rng=5)
        seeds = plant_seeds(graph, 5)
        fast = MFCModel(alpha=3.0, max_rounds=2).run(graph, seeds, rng=0)
        slow = MFCModel(alpha=3.0, max_rounds=2, use_kernel=False).run(
            graph, seeds, rng=0
        )
        assert_identical(fast, slow)
        assert fast.rounds <= 2

    def test_mixed_node_types_sort_like_reference(self):
        """repr-sorted visit order must hold for non-integer node ids too."""
        from repro.graphs.signed_digraph import SignedDiGraph

        g = SignedDiGraph()
        g.add_edge("b", 10, 1, 0.6)
        g.add_edge("b", 2, 1, 0.6)
        g.add_edge(10, "a", -1, 0.7)
        g.add_edge(2, "a", 1, 0.7)
        g.add_edge("a", "b", 1, 0.5)
        for trial in range(10):
            fast = MFCModel(alpha=2.0).run(g, {"b": NodeState.POSITIVE}, rng=trial)
            slow = MFCModel(alpha=2.0, use_kernel=False).run(
                g, {"b": NodeState.POSITIVE}, rng=trial
            )
            assert_identical(fast, slow)


class TestICKernelIdentity:
    @pytest.mark.parametrize("propagate_signs", [True, False])
    def test_bit_identical_over_random_graphs(self, propagate_signs):
        for graph_index, graph in enumerate(random_graphs()):
            seeds = plant_seeds(graph, 100 + graph_index)
            for trial in range(6):
                fast = ICModel(propagate_signs=propagate_signs).run(
                    graph, seeds, rng=trial
                )
                slow = ICModel(
                    propagate_signs=propagate_signs, use_kernel=False
                ).run(graph, seeds, rng=trial)
                assert_identical(fast, slow)

    def test_parent_generator_left_in_identical_state(self):
        graph = signed_preferential_attachment(40, rng=11)
        seeds = plant_seeds(graph, 11)
        fast_rng, slow_rng = random.Random(77), random.Random(77)
        assert_identical(
            ICModel().run(graph, seeds, rng=fast_rng),
            ICModel(use_kernel=False).run(graph, seeds, rng=slow_rng),
        )
        assert fast_rng.getstate() == slow_rng.getstate()
