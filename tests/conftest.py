"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.graphs.signed_digraph import SignedDiGraph
from repro.types import NodeState


@pytest.fixture
def triangle() -> SignedDiGraph:
    """A 3-node signed triangle: a->b (+), b->c (-), c->a (+)."""
    g = SignedDiGraph(name="triangle")
    g.add_edge("a", "b", 1, 0.5)
    g.add_edge("b", "c", -1, 0.4)
    g.add_edge("c", "a", 1, 0.9)
    return g


@pytest.fixture
def small_cascade_tree() -> SignedDiGraph:
    """A 5-node cascade tree with states consistent with MFC propagation.

    Structure (root r, all states shown):

        r(+) -+-> a(+)  via +0.5
              +-> b(-)  via -0.4
        a(+) ---> c(+)  via +0.9
        b(-) ---> d(-)  via +0.3
    """
    t = SignedDiGraph(name="cascade")
    t.add_edge("r", "a", 1, 0.5)
    t.add_edge("r", "b", -1, 0.4)
    t.add_edge("a", "c", 1, 0.9)
    t.add_edge("b", "d", 1, 0.3)
    t.set_states(
        {
            "r": NodeState.POSITIVE,
            "a": NodeState.POSITIVE,
            "b": NodeState.NEGATIVE,
            "c": NodeState.POSITIVE,
            "d": NodeState.NEGATIVE,
        }
    )
    return t
