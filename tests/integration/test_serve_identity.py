"""Integration: served responses are bit-identical to direct library calls.

This is the serving tier's acceptance gate. For every endpoint the wire
payload coming back over HTTP must equal the canonical-JSON encoding of
the same call made in-process — at ``workers=1`` and ``workers=2``
(shard affinity must not change answers), cold and warm (cache reuse
must not change answers).

A real server runs on a background thread per fixture; the stdlib
client talks to it over a loopback socket, so the HTTP framing, the
wire schema, the worker pool, and the codecs are all on the hot path.
"""

import json

import pytest

import repro
from repro.core.rid import RIDConfig
from repro.diffusion.mfc import MFCModel
from repro.errors import (
    ConfigError,
    EmptyInfectionError,
    ServeClientError,
    SessionExistsError,
    SessionNotFoundError,
)
from repro.graphs.generators.random_graphs import signed_erdos_renyi
from repro.serve import ServeClient, ServeConfig, start_in_thread
from repro.stream import StreamingDetectionEngine, synthetic_stream
from repro.types import NodeState


def canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True)


@pytest.fixture(scope="module", params=[1, 2], ids=["workers=1", "workers=2"])
def served(request):
    config = ServeConfig(workers=request.param, timeout=120.0)
    with start_in_thread(config) as handle:
        with ServeClient(handle.url) as client:
            yield client, handle


@pytest.fixture(scope="module")
def network():
    return signed_erdos_renyi(
        50, 0.09, positive_probability=0.8, weight_range=(0.1, 0.6), rng=5
    )


@pytest.fixture(scope="module")
def infected(network):
    cascade = MFCModel(alpha=3.0).run(
        network, {0: NodeState.POSITIVE, 7: NodeState.NEGATIVE}, rng=11
    )
    return cascade.infected_network(network)


class TestDetectIdentity:
    def test_served_detect_is_bit_identical(self, served, infected):
        client, _ = served
        direct = repro.detect(infected)
        payload = client.detect(infected, raw=True)
        assert canonical(payload["result"]) == canonical(direct.to_json())

    def test_warm_replay_is_bit_identical(self, served, infected):
        client, _ = served
        direct = repro.detect(infected)
        first = client.detect(infected, raw=True)
        second = client.detect(infected, raw=True)
        assert second["cache"]["graph"] == "hot"
        assert canonical(first["result"]) == canonical(second["result"])
        assert canonical(second["result"]) == canonical(direct.to_json())

    def test_budget_and_config_forms(self, served, infected):
        client, _ = served
        config = RIDConfig(beta=0.09)
        direct = repro.detect(infected, config=config, budget=5)
        payload = client.detect(infected, budget=5, config=config, raw=True)
        assert canonical(payload["result"]) == canonical(direct.to_json())

    def test_decoded_result_matches_local_type(self, served, infected):
        client, _ = served
        result = client.detect(infected)
        direct = repro.detect(infected)
        assert result.initiators == direct.initiators
        assert result.states == direct.states
        assert result.objective == direct.objective


class TestSimulateIdentity:
    def test_single_cascade(self, served, network):
        client, _ = served
        seeds = {0: NodeState.POSITIVE, 7: NodeState.NEGATIVE}
        direct = repro.simulate(network, seeds, rng=11)
        remote = client.simulate(network, seeds, rng=11)
        assert remote.events == direct.events
        assert remote.final_states == direct.final_states

    def test_multi_trial(self, served, network):
        client, _ = served
        seeds = {0: NodeState.POSITIVE}
        direct = repro.simulate(network, seeds, trials=3, rng=9)
        remote = client.simulate(network, seeds, trials=3, rng=9)
        assert [r.events for r in remote] == [d.events for d in direct]

    def test_model_params_travel(self, served, network):
        client, _ = served
        seeds = {0: NodeState.POSITIVE}
        direct = repro.simulate(network, seeds, model=MFCModel(alpha=2.0), rng=3)
        remote = client.simulate(
            network, seeds, model="mfc", params={"alpha": 2.0}, rng=3
        )
        assert remote.events == direct.events


class TestStreamSessionIdentity:
    def test_every_delta_matches_local_engine(self, served):
        client, handle = served
        snapshot, deltas = synthetic_stream(components=4, size=10, deltas=6, seed=3)
        local = StreamingDetectionEngine(snapshot)
        name = f"identity-{handle.server.config.workers}"
        with client.open_session(name, snapshot) as session:
            for delta in deltas:
                remote = session.delta(delta)
                step = local.step(delta)
                assert canonical(remote["result"]) == canonical(
                    step.result.to_json()
                ), f"divergence at delta {remote['report']['delta_index']}"
                assert remote["report"]["touched_nodes"] == step.report.touched_nodes
                assert remote["detection"].initiators == step.result.initiators

    def test_sessions_are_isolated_and_closeable(self, served):
        client, handle = served
        snapshot, deltas = synthetic_stream(components=3, size=8, deltas=1, seed=9)
        name = f"iso-{handle.server.config.workers}"
        session = client.open_session(name, snapshot)
        assert client.session_info(name)["session"] == name
        with pytest.raises(SessionExistsError):
            client.open_session(name, snapshot)
        session.delta(deltas[0])
        assert session.close()["closed"] is True
        with pytest.raises(SessionNotFoundError):
            client.session_info(name)


class TestEvaluateIdentity:
    def test_aggregated_scores_match(self, served):
        client, _ = served
        from repro.core.rid import RID
        from repro.experiments.config import WorkloadConfig

        workload = WorkloadConfig(dataset="epinions", scale=0.004, seed=3)
        direct = repro.evaluate(lambda: RID(RIDConfig()), workload, trials=2)
        remote = client.evaluate(workload, trials=2)["evaluation"]
        assert remote["f1"] == direct.f1
        assert remote["precision"] == direct.precision
        assert remote["seconds"] >= 0  # wall time is the one non-identical field


class TestErrorSurface:
    def test_config_error_maps_to_400(self, served, infected):
        client, _ = served
        with pytest.raises(ConfigError, match="alpha must be >= 1"):
            client.detect(infected, config=RIDConfig(alpha=0.5))

    def test_empty_infection_maps_to_422(self, served, network):
        client, _ = served
        from repro.graphs.signed_digraph import SignedDiGraph

        with pytest.raises(EmptyInfectionError, match="no nodes"):
            client.detect(SignedDiGraph())

    def test_unknown_route_is_404(self, served):
        client, _ = served
        with pytest.raises(ServeClientError) as info:
            client._request("GET", "/v2/detect")
        assert info.value.status == 404

    def test_bad_schema_tag_is_400(self, served):
        client, _ = served
        import http.client
        import json as _json

        conn = http.client.HTTPConnection(client.host, client.port, timeout=30)
        try:
            conn.request(
                "POST", "/v1/detect", body=_json.dumps({"schema": "nope"}).encode()
            )
            response = conn.getresponse()
            body = _json.loads(response.read())
            assert response.status == 400
            assert body["error"]["type"] == "WireFormatError"
        finally:
            conn.close()


class TestOpsEndpoints:
    def test_health_and_stats(self, served):
        client, handle = served
        health = client.health()
        assert health["status"] == "ok"
        assert health["workers"] == handle.server.config.workers
        stats = client.stats()
        assert stats["metrics"]["counters"]["serve.requests"] >= 1
        assert "serve.queue_wait" in stats["metrics"]["timers"]
        assert stats["inflight"] == 0


class TestGracefulShutdown:
    def test_stop_drains_and_reports_metrics(self, infected):
        with start_in_thread(ServeConfig(workers=1, timeout=60.0)) as handle:
            with ServeClient(handle.url) as client:
                client.detect(infected)
            handle.stop()
            snapshot = handle.metrics()
            assert snapshot.counters["serve.requests"] == 1.0
        # double-stop is a no-op (the context exit above)


class TestNamedDetectorIdentity:
    """Served named-detector responses must be bit-identical to direct
    in-process calls — at workers=1 and workers=2 (fixture params)."""

    @pytest.mark.parametrize(
        "name",
        ["rumor_centrality", "jordan_center", "distance_center", "multi_source"],
    )
    def test_served_named_detect_is_bit_identical(self, served, infected, name):
        from repro.detectors import resolve_detector

        client, _ = served
        direct = resolve_detector(name).detect(infected)
        payload = client.detect(infected, detector=name, raw=True)
        assert payload["detector"] == name
        assert canonical(payload["result"]) == canonical(direct.to_json())

    def test_config_travels_with_named_detector(self, served, infected):
        from repro.detectors import resolve_detector

        client, _ = served
        config = {"trials": 2, "candidate_limit": 4}
        direct = resolve_detector("map_suspect", dict(config)).detect(infected)
        payload = client.detect(
            infected, detector="map_suspect", config=config, raw=True
        )
        assert canonical(payload["result"]) == canonical(direct.to_json())

    def test_tier_routing_follows_the_policy(self, served, infected):
        from repro.detectors import resolve_detector
        from repro.detectors.registry import TIER_ROUTING

        client, _ = served
        fast = client.detect(infected, tier="fast", raw=True)
        assert fast["detector"] == TIER_ROUTING["fast"]
        direct_fast = resolve_detector(TIER_ROUTING["fast"]).detect(infected)
        assert canonical(fast["result"]) == canonical(direct_fast.to_json())
        accurate = client.detect(infected, tier="accurate", raw=True)
        assert accurate["detector"] == TIER_ROUTING["accurate"]
        assert canonical(accurate["result"]) == canonical(
            repro.detect(infected).to_json()
        )

    def test_detector_and_tier_conflict_maps_to_400(self, served, infected):
        client, _ = served
        with pytest.raises(ConfigError, match="mutually exclusive"):
            client.detect(infected, detector="rid", tier="fast")

    def test_unknown_detector_maps_to_400(self, served, infected):
        client, _ = served
        with pytest.raises(ConfigError, match="unknown detector"):
            client.detect(infected, detector="louvain")

    def test_named_evaluate_round_trips(self, served):
        client, _ = served
        payload = client.evaluate(
            {"dataset": "epinions", "scale": 0.004, "seed": 3},
            trials=2,
            detector="distance_center",
        )
        assert payload["detector"] == "distance_center"
        scores = payload["evaluation"]
        assert scores["method"] == "distance-center"
        assert 0.0 <= scores["f1"] <= 1.0

    def test_named_session_matches_local_engine(self, served):
        from repro.detectors import resolve_detector

        client, _ = served
        snapshot, deltas = synthetic_stream(components=3, size=8, deltas=4, seed=21)
        local = StreamingDetectionEngine(snapshot, detector="jordan_center")
        with client.open_session(
            "named-identity", snapshot, detector="jordan_center"
        ) as session:
            assert session.info["detector"] == "jordan_center"
            for delta in deltas:
                remote = session.delta(delta)
                local_step = local.step(delta)
                assert canonical(remote["result"]) == canonical(
                    local_step.result.to_json()
                )
