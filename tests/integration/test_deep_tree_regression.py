"""Deep path-tree detection under the default recursion limit.

The old recursive DP/binarize/Edmonds code could only survive a deep
(path-like) cascade tree by silently raising
``sys.setrecursionlimit`` process-wide. The compiled TreeDP kernel and
the explicit-stack rewrites must handle depth ≥ 5000 end-to-end with
the interpreter limit untouched.
"""

import sys

import pytest

from repro.core.binarize import binarize_cascade_tree
from repro.core.rid import RID, RIDConfig
from repro.core.tree_dp import KIsomitBTSolver
from repro.graphs.generators.trees import path_graph
from repro.types import NodeState

DEPTH = 5001


@pytest.fixture(scope="module")
def deep_path():
    graph = path_graph(DEPTH, sign=1, weight=0.9)
    for node in graph.nodes():
        graph.set_state(node, NodeState.POSITIVE)
    return graph


class TestDeepPathTree:
    def test_detection_completes_without_touching_recursion_limit(self, deep_path):
        limit_before = sys.getrecursionlimit()
        assert limit_before <= 10_000  # the old code would have bumped past this

        detector = RID(RIDConfig(max_k_per_tree=1))
        result = detector.detect(deep_path)

        assert sys.getrecursionlimit() == limit_before
        # A consistent all-positive path is one cascade tree; its root is
        # the unique best single initiator (it explains every descendant).
        assert result.initiators == {0}
        assert result.states == {0: NodeState.POSITIVE}

    def test_deep_binarize_and_kernel_solve(self, deep_path):
        limit_before = sys.getrecursionlimit()
        binary = binarize_cascade_tree(deep_path, alpha=3.0)
        assert binary.size() == DEPTH  # a path needs no dummies
        assert binary.depth() == DEPTH

        result = KIsomitBTSolver(binary).solve(1)
        assert result.initiators == {0: NodeState.POSITIVE}
        assert result.score > 1.0  # root explains descendants, not just itself
        assert sys.getrecursionlimit() == limit_before
