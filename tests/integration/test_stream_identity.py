"""The streaming tentpole's identity guarantee, end to end.

Replays a ≥20-delta synthetic event log — containing component merges,
recoveries, re-infections, fresh-node arrivals, node removals and edge
churn — and asserts after *every* delta that the incremental engine's
detection is bit-identical to a cold ``DetectionEngine`` run on the
materialised snapshot, for serial and ``workers=2`` execution.
"""

import pytest

from repro.core.rid import RID, RIDConfig
from repro.runtime.config import RuntimeConfig
from repro.stream import StreamingDetectionEngine, synthetic_stream
from repro.types import NodeState

DELTAS = 22


def results_equal(a, b) -> bool:
    return (
        a.initiators == b.initiators
        and a.states == b.states
        and a.objective == b.objective
        and [sorted(t.nodes()) for t in a.trees] == [sorted(t.nodes()) for t in b.trees]
    )


@pytest.fixture(scope="module")
def stream():
    return synthetic_stream(components=6, size=14, deltas=DELTAS, seed=7)


def test_stream_exercises_the_interesting_transitions(stream):
    _, deltas = stream
    assert len(deltas) >= 20
    recoveries = sum(
        1 for d in deltas for s in d.states.values() if s is NodeState.INACTIVE
    )
    cross_component = sum(
        1
        for d in deltas
        for u, v, _, _ in d.add_edges
        if u // 10**6 != v // 10**6  # merge or fresh-node attachment
    )
    assert recoveries >= 5
    assert cross_component >= 5
    assert sum(len(d.remove_edges) for d in deltas) >= 15
    assert sum(len(d.add_edges) for d in deltas) >= 15
    assert any(d.remove_nodes for d in deltas)


@pytest.mark.parametrize("workers", [1, 2])
def test_streamed_detection_bit_identical_to_cold_after_every_delta(stream, workers):
    snapshot, deltas = stream
    runtime = RuntimeConfig(workers=workers)
    config = RIDConfig()
    engine = StreamingDetectionEngine(snapshot, config=config, runtime=runtime)
    cold = RID(config)
    total_reused = 0
    for index, delta in enumerate(deltas):
        step = engine.step(delta)
        total_reused += step.reused_artifacts
        materialised = engine.materialise()
        if materialised.number_of_nodes() == 0:
            assert step.result.initiators == set()
            continue
        want = cold.detect(materialised)
        assert results_equal(step.result, want), f"divergence at delta {index}"
    # The whole point: untouched components came back from the cache.
    assert total_reused > 0


def test_budget_mode_spot_check(stream):
    snapshot, deltas = stream
    config = RIDConfig()
    engine = StreamingDetectionEngine(snapshot, config=config)
    for delta in deltas[:5]:
        engine.apply(delta)
    materialised = engine.materialise()
    cold = RID(config)
    budget = len(cold.detect(materialised).trees) + 2
    got = engine.detect(budget=budget)
    want = cold.detect_with_budget(materialised, budget)
    assert results_equal(got, want)


@pytest.mark.parametrize("name", ["jordan_center", "multi_source"])
def test_named_detector_stream_matches_cold_detect(stream, name):
    """The detector pass-through: each step re-runs the named detector
    on the materialised snapshot — identical to a cold direct call."""
    from repro.detectors import resolve_detector

    snapshot, deltas = stream
    engine = StreamingDetectionEngine(snapshot, detector=name)
    cold = resolve_detector(name)
    for index, delta in enumerate(deltas[:8]):
        step = engine.step(delta)
        materialised = engine.materialise()
        if materialised.number_of_nodes() == 0:
            assert step.result.initiators == set()
            continue
        want = cold.detect(materialised)
        assert step.result.initiators == want.initiators, f"delta {index}"
        assert step.result.method == want.method


def test_named_rid_string_uses_the_incremental_path(stream):
    snapshot, deltas = stream
    named = StreamingDetectionEngine(snapshot, detector="rid")
    reference = StreamingDetectionEngine(snapshot, config=RIDConfig())
    for delta in deltas[:6]:
        got = named.step(delta)
        want = reference.step(delta)
        assert results_equal(got.result, want.result)
    # the string spelling must keep the incremental engine's reuse
    assert named.detector is None
