"""Parallel execution must be bit-identical to serial execution.

The runtime's whole determinism story rests on shipping
``(base_seed, labels)`` to workers and deriving each trial's seed there;
these tests pin that contract end-to-end for the Monte-Carlo estimator,
the detection-trial runner, and the Figure 2 driver.
"""

import dataclasses

from repro.core.baselines import RIDTreeDetector
from repro.core.rid import RID, RIDConfig
from repro.diffusion.mfc import MFCModel
from repro.diffusion.monte_carlo import estimate_spread, simulate_many
from repro.experiments import fig2
from repro.experiments.config import WorkloadConfig
from repro.experiments.runner import run_detection_trials
from repro.graphs.signed_digraph import SignedDiGraph
from repro.runtime import RuntimeConfig
from repro.types import NodeState

PARALLEL = RuntimeConfig(workers=2)


def ladder(n: int = 40) -> SignedDiGraph:
    g = SignedDiGraph()
    for i in range(n - 1):
        g.add_edge(i, i + 1, 1 if i % 4 else -1, 0.45)
        if i % 2:
            g.add_edge(i + 1, i, 1, 0.3)
    return g


class TestMonteCarloIdentity:
    def test_simulate_many_bit_identical(self):
        model = MFCModel(alpha=2.0)
        seeds = {0: NodeState.POSITIVE, 7: NodeState.NEGATIVE}
        serial = simulate_many(model, ladder(), seeds, trials=10, base_seed=11)
        parallel = simulate_many(
            model, ladder(), seeds, trials=10, base_seed=11, runtime=PARALLEL
        )
        for a, b in zip(serial, parallel):
            assert a.seeds == b.seeds
            assert a.final_states == b.final_states
            assert a.events == b.events
            assert a.rounds == b.rounds

    def test_estimate_spread_bit_identical(self):
        model = MFCModel(alpha=1.5)
        seeds = {0: NodeState.POSITIVE}
        serial = estimate_spread(model, ladder(), seeds, trials=12, base_seed=5)
        parallel = estimate_spread(
            model, ladder(), seeds, trials=12, base_seed=5, runtime=PARALLEL
        )
        assert serial == parallel  # dataclass equality: every field exact


class TestDetectionTrialsIdentity:
    def test_aggregated_evaluations_bit_identical(self):
        config = WorkloadConfig(
            dataset="epinions", scale=0.002, seed=11, num_initiators=8
        )
        factories = {
            "rid": lambda: RID(RIDConfig(beta=0.5)),
            "rid-tree": lambda: RIDTreeDetector(),
        }
        serial = run_detection_trials(config, factories, trials=2)
        parallel = run_detection_trials(config, factories, trials=2, runtime=PARALLEL)
        assert serial.keys() == parallel.keys()
        for name in serial:
            # Everything except the measured wall-clock must match exactly.
            a = dataclasses.replace(serial[name], seconds=0.0)
            b = dataclasses.replace(parallel[name], seconds=0.0)
            assert a == b


class TestFig2Identity:
    def test_fig2_bit_identical(self):
        serial = fig2.run(trials=40, seed=3)
        parallel = fig2.run(trials=40, seed=3, runtime=PARALLEL)
        assert serial == parallel
