"""The pipeline-identity gate.

The staged :class:`~repro.pipeline.engine.DetectionEngine` must be
**bit-identical** to the pre-refactor sequential implementation frozen
in :mod:`repro.core.rid_reference` — initiators, inferred states,
objective, cascade-tree contents and ordering, per-tree selections —
on the golden regression workload and across execution modes (serial,
parallel, cache-warm). CI runs this gate on every push; see also
``benchmarks/bench_pipeline.py`` which re-asserts identity on larger
randomised multi-component snapshots.
"""

import pytest

from repro.core.rid import RID, RIDConfig
from repro.core.rid_reference import (
    reference_detect,
    reference_detect_with_budget,
)
from repro.experiments.config import WorkloadConfig
from repro.experiments.workload import build_workload
from repro.runtime.config import RuntimeConfig


@pytest.fixture(scope="module")
def golden_infected():
    workload = build_workload(
        WorkloadConfig(dataset="epinions", scale=0.003, seed=123)
    )
    return workload.infected


def assert_results_identical(actual, expected):
    assert actual.method == expected.method
    assert actual.initiators == expected.initiators
    assert actual.states == expected.states
    assert actual.objective == expected.objective
    assert len(actual.trees) == len(expected.trees)
    for actual_tree, expected_tree in zip(actual.trees, expected.trees):
        assert sorted(actual_tree.nodes(), key=repr) == sorted(
            expected_tree.nodes(), key=repr
        )
        assert sorted(
            (u, v, int(d.sign), d.weight) for u, v, d in actual_tree.iter_edges()
        ) == sorted(
            (u, v, int(d.sign), d.weight) for u, v, d in expected_tree.iter_edges()
        )


def assert_selections_identical(actual, expected):
    assert len(actual) == len(expected)
    for a, e in zip(actual, expected):
        assert a.tree_size == e.tree_size
        assert a.k == e.k
        assert a.score == e.score
        assert a.penalized_objective == e.penalized_objective
        assert a.initiators == e.initiators
        assert a.scanned_k == e.scanned_k


class TestDetectIdentity:
    @pytest.mark.parametrize("beta", [0.1, 0.8])
    def test_engine_matches_reference(self, golden_infected, beta):
        config = RIDConfig(beta=beta)
        expected, expected_selections = reference_detect(config, golden_infected)
        detector = RID(config)
        actual = detector.detect(golden_infected)
        assert_results_identical(actual, expected)
        assert_selections_identical(detector.last_selections, expected_selections)

    def test_parallel_matches_reference(self, golden_infected):
        config = RIDConfig(beta=0.8)
        expected, expected_selections = reference_detect(config, golden_infected)
        detector = RID(config)
        actual = detector.detect(
            golden_infected, runtime=RuntimeConfig(workers=2)
        )
        assert_results_identical(actual, expected)
        assert_selections_identical(detector.last_selections, expected_selections)

    def test_cache_warm_matches_reference(self, golden_infected):
        config = RIDConfig(beta=0.8)
        expected, _ = reference_detect(config, golden_infected)
        detector = RID(config)
        detector.detect(golden_infected)  # warm every artifact
        assert detector.engine.cache_stats()["entries"] > 0
        actual = detector.detect(golden_infected)
        assert_results_identical(actual, expected)


class TestRegistryIdentity:
    """Registry-resolved ``'rid'`` must stay bit-identical to building
    ``RID(config)`` directly — the detector seam adds no behaviour."""

    @pytest.mark.parametrize("beta", [0.1, 0.8])
    def test_resolved_rid_matches_direct(self, golden_infected, beta):
        from repro.detectors import resolve_detector

        config = RIDConfig(beta=beta)
        direct = RID(config).detect(golden_infected)
        resolved = resolve_detector("rid", config).detect(golden_infected)
        assert_results_identical(resolved, direct)
        assert resolved.to_json() == direct.to_json()

    def test_resolved_rid_budget_matches_direct(self, golden_infected):
        from repro.detectors import resolve_detector

        config = RIDConfig()
        base = RID(config).detect(golden_infected)
        budget = len(base.trees) + 2
        direct = RID(config).detect_with_budget(golden_infected, budget=budget)
        resolved = resolve_detector("rid", config).detect_with_budget(
            golden_infected, budget=budget
        )
        assert_results_identical(resolved, direct)

    def test_facade_name_matches_direct(self, golden_infected):
        import repro

        direct = RID(RIDConfig()).detect(golden_infected)
        named = repro.detect(golden_infected, detector="rid")
        assert named.to_json() == direct.to_json()


class TestBudgetIdentity:
    def test_engine_matches_reference_across_budgets(self, golden_infected):
        config = RIDConfig()
        # Minimum feasible budget = number of extracted trees.
        base, _ = reference_detect(config, golden_infected)
        min_budget = len(base.trees)
        for budget in (min_budget, min_budget + 3, min_budget + 10):
            expected, expected_selections = reference_detect_with_budget(
                config, golden_infected, budget
            )
            detector = RID(config)
            actual = detector.detect_with_budget(golden_infected, budget=budget)
            assert_results_identical(actual, expected)
            assert_selections_identical(
                detector.last_selections, expected_selections
            )

    def test_budget_sweep_on_shared_engine_matches_reference(self, golden_infected):
        """Curve reuse across a sweep must not change any answer."""
        config = RIDConfig()
        base, _ = reference_detect(config, golden_infected)
        min_budget = len(base.trees)
        detector = RID(config)  # one engine, cache shared across the sweep
        for budget in range(min_budget, min_budget + 6):
            expected, _ = reference_detect_with_budget(
                config, golden_infected, budget
            )
            actual = detector.detect_with_budget(golden_infected, budget=budget)
            assert_results_identical(actual, expected)

    def test_parallel_budget_matches_reference(self, golden_infected):
        config = RIDConfig()
        base, _ = reference_detect(config, golden_infected)
        budget = len(base.trees) + 5
        expected, _ = reference_detect_with_budget(config, golden_infected, budget)
        actual = RID(config).detect_with_budget(
            golden_infected, budget=budget, runtime=RuntimeConfig(workers=2)
        )
        assert_results_identical(actual, expected)
