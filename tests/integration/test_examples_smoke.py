"""Smoke tests: the shipped examples must run end to end.

Only the fast examples run here (the full set is exercised manually);
each is executed in a subprocess exactly as a user would run it.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, timeout: int = 600) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr[-2000:]}"
    return result.stdout


class TestExampleSmoke:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "RID detected" in out
        assert "precision=" in out
        assert "cascade tree" in out

    def test_custom_model(self):
        out = run_example("custom_model.py")
        assert "stubborn-majority" in out
        assert "model-mismatch" in out

    def test_cli_module_invocation(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "table2", "--scale", "0.002"],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0
        assert "Table II" in result.stdout
