"""Integration tests: simulate-then-detect on seeded synthetic worlds."""

import pytest

from repro.core.baselines import RIDPositiveDetector, RIDTreeDetector
from repro.core.rid import RID, RIDConfig
from repro.experiments.config import WorkloadConfig
from repro.experiments.workload import build_workload
from repro.metrics.identity import identity_metrics
from repro.metrics.state import state_metrics


@pytest.fixture(scope="module")
def epinions_world():
    """A small but non-trivial Epinions-like workload (cached per module)."""
    return build_workload(WorkloadConfig(dataset="epinions", scale=0.004, seed=11))


@pytest.fixture(scope="module")
def slashdot_world():
    return build_workload(WorkloadConfig(dataset="slashdot", scale=0.006, seed=11))


class TestWorkloadConstruction:
    def test_infected_network_nonempty(self, epinions_world):
        assert epinions_world.infected.number_of_nodes() >= len(epinions_world.seeds)

    def test_seeds_are_infected(self, epinions_world):
        infected_nodes = set(epinions_world.infected.nodes())
        assert set(epinions_world.seeds) <= infected_nodes

    def test_all_infected_states_active(self, epinions_world):
        for node in epinions_world.infected.nodes():
            assert epinions_world.infected.state(node).is_active

    def test_diffusion_is_reversed_social(self, epinions_world):
        social, diffusion = epinions_world.social, epinions_world.diffusion
        count = 0
        for u, v, _ in social.iter_edges():
            assert diffusion.has_edge(v, u)
            count += 1
            if count >= 50:
                break

    def test_workload_deterministic(self):
        config = WorkloadConfig(dataset="epinions", scale=0.003, seed=5)
        a = build_workload(config, trial=0)
        b = build_workload(config, trial=0)
        assert set(a.seeds) == set(b.seeds)
        assert set(a.infected.nodes()) == set(b.infected.nodes())

    def test_trials_vary(self):
        config = WorkloadConfig(dataset="epinions", scale=0.003, seed=5)
        a = build_workload(config, trial=0)
        b = build_workload(config, trial=1)
        assert set(a.seeds) != set(b.seeds)


class TestEndToEndDetection:
    def test_rid_tree_precision_high(self, epinions_world):
        result = RIDTreeDetector().detect(epinions_world.infected)
        metrics = identity_metrics(result.initiators, set(epinions_world.seeds))
        # The paper's guarantee (precision 1.0) holds up to rare
        # source-cycle artifacts; at this scale we demand >= 0.6.
        assert metrics.precision >= 0.6

    def test_rid_finds_at_least_tree_roots(self, epinions_world):
        tree = RIDTreeDetector(prune_inconsistent=True).detect(epinions_world.infected)
        rid = RID(RIDConfig(beta=0.1)).detect(epinions_world.infected)
        assert len(rid.initiators) >= len(tree.initiators)

    def test_rid_recall_positive(self, epinions_world):
        result = RID(RIDConfig(beta=0.5)).detect(epinions_world.infected)
        metrics = identity_metrics(result.initiators, set(epinions_world.seeds))
        assert metrics.recall > 0.0

    def test_rid_beta_tradeoff_direction(self, epinions_world):
        low = RID(RIDConfig(beta=0.0)).detect(epinions_world.infected)
        high = RID(RIDConfig(beta=1.0)).detect(epinions_world.infected)
        assert len(low.initiators) >= len(high.initiators)

    def test_rid_infers_states_for_all_detections(self, slashdot_world):
        result = RID(RIDConfig(beta=0.4)).detect(slashdot_world.infected)
        assert set(result.states) == result.initiators
        metrics = state_metrics(result.states, slashdot_world.seeds)
        if metrics.evaluated:
            assert metrics.accuracy >= 0.5

    def test_rid_positive_runs_on_both_datasets(self, epinions_world, slashdot_world):
        for world in (epinions_world, slashdot_world):
            result = RIDPositiveDetector().detect(world.infected)
            assert result.num_detected() >= 1

    def test_detection_deterministic(self, epinions_world):
        a = RID(RIDConfig(beta=0.3)).detect(epinions_world.infected)
        b = RID(RIDConfig(beta=0.3)).detect(epinions_world.infected)
        assert a.initiators == b.initiators
        assert a.states == b.states
