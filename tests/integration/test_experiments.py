"""Integration tests for the experiment harness (tiny scales)."""

import json

import pytest

from repro.experiments import ablations, fig2, fig4, fig5, fig6, lemma31, table2
from repro.experiments.cli import build_parser, main as cli_main
from repro.experiments.config import WorkloadConfig
from repro.experiments.reporting import (
    format_paper_vs_measured,
    format_series,
    format_table,
    save_json,
)
from repro.experiments.runner import run_detection_trials
from repro.core.baselines import RIDTreeDetector
from repro.errors import ConfigError


class TestConfigValidation:
    def test_valid_config(self):
        WorkloadConfig().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dataset": "unknown"},
            {"scale": 0},
            {"positive_ratio": 1.5},
            {"alpha": 0.1},
            {"num_initiators": 0},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ConfigError):
            WorkloadConfig(**kwargs).validate()

    def test_initiator_scaling_default(self):
        # Paper-proportional above the floor, floored at 40 below it.
        assert WorkloadConfig(scale=0.1).resolved_num_initiators() == 100
        assert WorkloadConfig(scale=0.01).resolved_num_initiators() == 40
        assert WorkloadConfig(num_initiators=33).resolved_num_initiators() == 33


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [(1, 2.5), ("x", None)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.500" in text
        assert "-" in lines[-1]

    def test_format_series(self):
        text = format_series("s", [0.1, 0.2], [1, 2], x_label="beta", y_label="n")
        assert "beta -> n" in text
        assert "0.100:1" in text

    def test_paper_vs_measured(self):
        row = format_paper_vs_measured("P", 1.0, 0.87, note="epinions")
        assert "paper=1.000" in row and "measured=0.870" in row

    def test_save_json(self, tmp_path):
        path = tmp_path / "out" / "result.json"
        save_json({"x": 1}, path)
        assert json.loads(path.read_text()) == {"x": 1}


class TestRunner:
    def test_run_detection_trials_aggregates(self):
        config = WorkloadConfig(dataset="epinions", scale=0.002, seed=3)
        results = run_detection_trials(
            config, {"tree": lambda: RIDTreeDetector()}, trials=2
        )
        agg = results["tree"]
        assert agg.trials == 2
        assert 0.0 <= agg.precision <= 1.0
        assert agg.accuracy is None  # identity-only baseline


class TestExperimentModules:
    def test_table2_rows(self):
        rows = table2.run(scale=0.002, seed=3)
        assert {r.network for r in rows} == {"epinions", "slashdot"}
        for row in rows:
            assert row.measured_nodes > 0
            assert abs(row.measured_links - row.paper_links) / row.paper_links < 0.1
        text = table2.render(rows, scale=0.002)
        assert "epinions" in text

    def test_fig2_contrast(self):
        result = fig2.run(trials=300, seed=3)
        # MFC's boosted trusted link dominates; IC cannot flip.
        assert result.simultaneous_mfc_positive > result.simultaneous_ic_positive
        assert result.sequential_mfc_flipped > 0.9
        assert result.sequential_ic_flipped == 0.0

    def test_fig4_runs_and_orders_baselines(self):
        result = fig4.run(scale=0.003, trials=1, seed=3, datasets=("epinions",))
        scores = result.per_network["epinions"]
        assert set(scores) == {"rid(0.09)", "rid(0.1)", "rid-tree", "rid-positive"}
        assert scores["rid-tree"].precision >= 0.5
        assert fig4.render(result)

    def test_fig5_beta_monotonicity(self):
        result = fig5.run(
            scale=0.003, trials=1, seed=3, betas=(0.0, 0.5, 1.0), datasets=("epinions",)
        )
        series = result.per_network["epinions"]
        detected = [agg.num_detected for agg in series]
        assert detected[0] >= detected[-1]
        assert fig5.render(result)

    def test_fig6_state_metrics_present(self):
        result = fig6.run(
            scale=0.003, trials=1, seed=3, betas=(0.2, 1.0), datasets=("slashdot",)
        )
        for agg in result.per_network["slashdot"]:
            assert agg.accuracy is not None
            assert agg.mae is not None
        assert fig6.render(result)

    def test_lemma31_equivalence_holds(self):
        checks = lemma31.run(instances=4, num_elements=8, num_subsets=5, seed=3)
        assert all(c.equivalent for c in checks)
        assert all(c.roundtrip_feasible for c in checks)
        assert all(c.greedy_size >= c.cover_optimum for c in checks)
        assert lemma31.render(checks)

    def test_alpha_ablation_monotone_spread(self):
        points = ablations.run_alpha_sweep(
            alphas=(1.0, 3.0), scale=0.003, trials=2, seed=3
        )
        assert points[0].spread.mean_infected <= points[1].spread.mean_infected
        assert ablations.render_alpha_sweep(points)

    def test_k_search_ablation(self):
        comparisons = ablations.run_k_search_ablation(
            scale=0.002, betas=(0.5,), seed=3
        )
        (c,) = comparisons
        assert c.objective_gap >= -1e-9
        assert ablations.render_k_search(comparisons)

    def test_dp_scaling_ablation(self):
        points = ablations.run_dp_scaling(sizes=(5, 20), k=2, seed=3)
        assert points[0].binary_size >= points[0].tree_size
        assert ablations.render_dp_scaling(points)


class TestCLI:
    def test_parser_accepts_artefacts(self):
        parser = build_parser()
        args = parser.parse_args(["table2", "--scale", "0.002"])
        assert args.artefact == "table2"
        assert args.scale == 0.002

    def test_cli_table2_end_to_end(self, capsys):
        assert cli_main(["table2", "--scale", "0.002", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out

    def test_cli_lemma31(self, capsys):
        assert cli_main(["lemma31", "--seed", "3"]) == 0
        assert "Lemma 3.1" in capsys.readouterr().out

    def test_cli_diffusion_analysis(self, capsys):
        assert cli_main(["diffusion", "--scale", "0.002", "--trials", "1", "--seed", "3"]) == 0
        assert "Diffusion analysis" in capsys.readouterr().out

    def test_cli_rejects_unknown_artefact(self):
        with pytest.raises(SystemExit):
            cli_main(["not-an-artefact"])
