"""Golden end-to-end regression pins.

These tests freeze the exact outcome of the full pipeline for fixed
seeds. They are deliberately brittle: any change to the generator, the
weighting, the MFC engine, the tree extraction or the DP that alters
behaviour — intentionally or not — must show up here and be
acknowledged by updating the pinned values.
"""

from repro.core.baselines import RIDTreeDetector
from repro.core.rid import RID, RIDConfig
from repro.experiments.config import WorkloadConfig
from repro.experiments.workload import build_workload


def make_workload():
    return build_workload(WorkloadConfig(dataset="epinions", scale=0.003, seed=123))


class TestGoldenPipeline:
    def test_workload_shape_pinned(self):
        # Pins re-derived when derive_seed moved to the full-width
        # blake2b digest (the weak crc32/shift mixing could collide
        # distinct base seeds); the network shape is count-driven and
        # unchanged, the cascade stream legitimately shifted.
        workload = make_workload()
        assert workload.diffusion.number_of_nodes() == 395
        assert workload.diffusion.number_of_edges() == 2525
        assert len(workload.seeds) == 40
        assert workload.infected.number_of_nodes() == 308
        assert workload.cascade.rounds == 4

    def test_seed_identities_pinned(self):
        workload = make_workload()
        assert sorted(workload.seeds)[:5] == [3, 4, 19, 25, 33]

    def test_rid_tree_detection_pinned(self):
        workload = make_workload()
        result = RIDTreeDetector().detect(workload.infected)
        assert result.initiators == set(sorted(result.initiators))  # stable type
        assert len(result.initiators) == 5

    def test_rid_detection_pinned(self):
        workload = make_workload()
        result = RID(RIDConfig(beta=0.8)).detect(workload.infected)
        # Pin the size and a couple of members rather than the whole set,
        # so failure messages stay readable.
        assert len(result.initiators) == 5
        tree_roots = RIDTreeDetector(prune_inconsistent=True).detect(
            workload.infected
        )
        assert set(tree_roots.initiators) <= result.initiators

    def test_detection_is_repeatable(self):
        a = RID(RIDConfig(beta=0.5)).detect(make_workload().infected)
        b = RID(RIDConfig(beta=0.5)).detect(make_workload().infected)
        assert a.initiators == b.initiators
        assert a.objective == b.objective
