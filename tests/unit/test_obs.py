"""Unit tests for the observability layer (:mod:`repro.obs`)."""

import json
import math

import pytest

from repro.obs import (
    NULL,
    CompositeRecorder,
    Metrics,
    MetricsRecorder,
    NullRecorder,
    Recorder,
    Stat,
    TraceRecorder,
    current_recorder,
    format_report,
    read_jsonl,
    resolve_recorder,
    using_recorder,
)


class TestNullRecorder:
    def test_disabled(self):
        assert NullRecorder().enabled is False
        assert NULL.enabled is False

    def test_all_calls_are_noops(self):
        rec = NullRecorder()
        rec.incr("a")
        rec.incr("a", 5)
        rec.gauge("g", 1.0)
        rec.timing("t", 0.5)
        rec.absorb(Metrics())
        with rec.span("outer") as outer:
            with rec.span("inner", depth=2) as inner:
                pass
        # Null spans are a shared singleton — no allocation per span.
        assert outer is inner

    def test_is_the_default_ambient(self):
        assert current_recorder() is NULL
        assert resolve_recorder(None) is NULL


class TestAmbientRecorder:
    def test_using_recorder_installs_and_restores(self):
        rec = MetricsRecorder()
        assert current_recorder() is NULL
        with using_recorder(rec):
            assert current_recorder() is rec
            assert resolve_recorder(None) is rec
        assert current_recorder() is NULL

    def test_explicit_wins_over_ambient(self):
        ambient = MetricsRecorder()
        explicit = MetricsRecorder()
        with using_recorder(ambient):
            assert resolve_recorder(explicit) is explicit

    def test_nesting_restores_outer(self):
        outer, inner = MetricsRecorder(), MetricsRecorder()
        with using_recorder(outer):
            with using_recorder(inner):
                assert current_recorder() is inner
            assert current_recorder() is outer


class TestStat:
    def test_add_and_mean(self):
        s = Stat()
        for value in (1.0, 2.0, 6.0):
            s.add(value)
        assert s.count == 3
        assert s.total == 9.0
        assert s.min == 1.0
        assert s.max == 6.0
        assert s.mean == 3.0

    def test_empty_stat_mean_and_dict(self):
        s = Stat()
        assert s.mean == 0.0
        d = s.to_dict()
        assert d["min"] is None and d["max"] is None

    def test_merged_matches_combined_stream(self):
        a, b, c = Stat(), Stat(), Stat()
        for value in (3.0, 1.0):
            a.add(value)
            c.add(value)
        for value in (7.0, 2.0):
            b.add(value)
            c.add(value)
        m = a.merged(b)
        assert (m.count, m.total, m.min, m.max) == (c.count, c.total, c.min, c.max)
        # merged() does not mutate its operands
        assert a.count == 2 and b.count == 2


class TestMetricsRecorder:
    def test_counters_gauges_timers(self):
        rec = MetricsRecorder()
        assert rec.enabled is True
        rec.incr("hits")
        rec.incr("hits", 4)
        rec.gauge("size", 10.0)
        rec.gauge("size", 20.0)
        rec.timing("step", 0.5)
        m = rec.metrics
        assert m.counters["hits"] == 5
        assert m.gauges["size"].mean == 15.0
        assert m.timers["step"].total == 0.5

    def test_span_records_timer(self):
        rec = MetricsRecorder()
        with rec.span("work"):
            pass
        assert rec.metrics.timers["work"].count == 1
        assert rec.metrics.timers["work"].total >= 0.0

    def test_absorb_merges_counters(self):
        worker = MetricsRecorder()
        worker.incr("trials", 3)
        worker.timing("chunk", 0.1)
        parent = MetricsRecorder()
        parent.incr("trials", 2)
        parent.absorb(worker.snapshot())
        assert parent.metrics.counters["trials"] == 5
        assert parent.metrics.timers["chunk"].count == 1

    def test_snapshot_is_a_copy(self):
        rec = MetricsRecorder()
        rec.incr("n")
        snap = rec.snapshot()
        rec.incr("n")
        assert snap.counters["n"] == 1
        assert rec.metrics.counters["n"] == 2

    def test_merge_is_commutative(self):
        a, b = Metrics(), Metrics()
        a.counters["x"] = 2
        a.timers["t"] = Stat(count=1, total=1.0, min=1.0, max=1.0)
        b.counters["x"] = 3
        b.counters["y"] = 1
        b.timers["t"] = Stat(count=2, total=4.0, min=1.5, max=2.5)
        ab, ba = a.merge(b), b.merge(a)
        assert ab.to_dict() == ba.to_dict()


class TestTraceRecorder:
    def make_trace(self):
        rec = TraceRecorder()
        with rec.span("outer", stage="demo"):
            with rec.span("inner"):
                rec.incr("events", 2)
        rec.timing("tail", 0.001)
        return rec

    def test_span_nesting_depth(self):
        rec = self.make_trace()
        spans = {e["name"]: e for e in rec.events if e["ph"] == "X"}
        assert spans["outer"]["args"]["depth"] == 1
        assert spans["inner"]["args"]["depth"] == 2
        # inner is contained within outer on the timeline
        assert spans["outer"]["ts"] <= spans["inner"]["ts"]
        assert (
            spans["inner"]["ts"] + spans["inner"]["dur"]
            <= spans["outer"]["ts"] + spans["outer"]["dur"]
        )

    def test_span_fields_land_in_args(self):
        rec = self.make_trace()
        outer = next(e for e in rec.events if e.get("name") == "outer")
        assert outer["args"]["stage"] == "demo"

    def test_jsonl_round_trip(self, tmp_path):
        rec = self.make_trace()
        path = tmp_path / "trace.jsonl"
        rec.export_jsonl(path)
        events = read_jsonl(path)
        assert events == rec.events
        # one JSON object per line
        lines = path.read_text().strip().splitlines()
        assert len(lines) == len(rec.events)
        for line in lines:
            json.loads(line)

    def test_chrome_export_loads(self, tmp_path):
        rec = self.make_trace()
        path = tmp_path / "trace.json"
        rec.export_chrome(path)
        data = json.loads(path.read_text())
        assert data["traceEvents"] == rec.events
        phases = {e["ph"] for e in data["traceEvents"]}
        assert "X" in phases  # complete (span) events
        assert "C" in phases  # counter events
        for event in data["traceEvents"]:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(event)


class TestCompositeRecorder:
    def test_fans_out_to_all_children(self):
        a, b = MetricsRecorder(), MetricsRecorder()
        rec = CompositeRecorder(a, b)
        assert rec.enabled is True
        rec.incr("n", 2)
        with rec.span("s"):
            pass
        assert a.metrics.counters["n"] == 2
        assert b.metrics.counters["n"] == 2
        assert a.metrics.timers["s"].count == 1
        assert b.metrics.timers["s"].count == 1

    def test_disabled_children_are_dropped(self):
        only = MetricsRecorder()
        rec = CompositeRecorder(NullRecorder(), only)
        rec.incr("n")
        assert only.metrics.counters["n"] == 1

    def test_all_null_composite_is_disabled(self):
        assert CompositeRecorder(NullRecorder(), NULL).enabled is False


class TestFormatReport:
    def test_report_contains_all_sections(self):
        rec = MetricsRecorder()
        rec.incr("kernel.mfc.rounds", 12)
        rec.gauge("rid.tree_nodes", 40.0)
        rec.timing("rid.tree_dp", 0.25)
        text = format_report(rec.metrics)
        assert "counters" in text
        assert "gauges" in text
        assert "timers" in text
        assert "kernel.mfc.rounds" in text
        assert "rid.tree_nodes" in text
        assert "rid.tree_dp" in text
        assert "250.000" in text  # timers render in milliseconds

    def test_empty_metrics(self):
        text = format_report(Metrics())
        assert "(nothing recorded)" in text
