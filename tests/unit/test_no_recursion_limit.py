"""The package must never mutate the interpreter recursion limit.

``sys.setrecursionlimit`` used to be bumped (and never restored) by
``core/tree_dp.py``, ``core/binarize.py`` and ``core/arborescence.py``
— a process-wide global-state leak that worker processes inherited and
a crash risk masker on deep cascade trees. All three call sites were
replaced by explicit-stack / compiled-kernel implementations; this test
greps the installed package so a regression cannot slip back in.
"""

from pathlib import Path

import repro


def test_no_setrecursionlimit_anywhere_in_package():
    package_root = Path(repro.__file__).resolve().parent
    offenders = []
    for path in sorted(package_root.rglob("*.py")):
        if "setrecursionlimit" in path.read_text(encoding="utf-8"):
            offenders.append(str(path.relative_to(package_root)))
    assert offenders == []
