"""Unit tests for the evaluation metrics (Sec. IV-B2)."""

import pytest

from repro.metrics.identity import f1_score, identity_metrics, precision, recall
from repro.metrics.state import (
    accuracy,
    mean_absolute_error,
    r_squared,
    state_metrics,
)
from repro.types import NodeState

POS, NEG = NodeState.POSITIVE, NodeState.NEGATIVE


class TestIdentityMetrics:
    def test_perfect_detection(self):
        m = identity_metrics({1, 2}, {1, 2})
        assert m.precision == m.recall == m.f1 == 1.0
        assert m.true_positives == 2
        assert m.false_positives == m.false_negatives == 0

    def test_partial_overlap(self):
        m = identity_metrics({1, 2, 3, 4}, {1, 2, 5})
        assert m.precision == pytest.approx(0.5)
        assert m.recall == pytest.approx(2 / 3)
        assert m.f1 == pytest.approx(2 * 0.5 * (2 / 3) / (0.5 + 2 / 3))

    def test_empty_prediction(self):
        assert precision(set(), {1}) == 0.0
        assert recall(set(), {1}) == 0.0
        assert f1_score(set(), {1}) == 0.0

    def test_empty_truth(self):
        assert recall({1}, set()) == 0.0
        assert precision({1}, set()) == 0.0

    def test_disjoint_sets(self):
        m = identity_metrics({1}, {2})
        assert m.f1 == 0.0
        assert m.false_positives == 1
        assert m.false_negatives == 1

    def test_accepts_iterables(self):
        m = identity_metrics([1, 1, 2], (2, 3))
        assert m.true_positives == 1


class TestStateAccuracy:
    def test_all_match(self):
        assert accuracy({1: POS, 2: NEG}, {1: POS, 2: NEG}) == 1.0

    def test_half_match(self):
        assert accuracy({1: POS, 2: POS}, {1: POS, 2: NEG}) == 0.5

    def test_only_common_keys_count(self):
        assert accuracy({1: POS, 99: NEG}, {1: POS, 2: NEG}) == 1.0

    def test_no_common_keys(self):
        assert accuracy({1: POS}, {2: NEG}) == 0.0


class TestStateMAE:
    def test_zero_for_perfect(self):
        assert mean_absolute_error({1: POS}, {1: POS}) == 0.0

    def test_each_mismatch_contributes_two(self):
        assert mean_absolute_error({1: POS, 2: POS}, {1: NEG, 2: POS}) == 1.0

    def test_empty_intersection(self):
        assert mean_absolute_error({}, {1: POS}) == 0.0


class TestRSquared:
    def test_perfect_prediction(self):
        assert r_squared({1: POS, 2: NEG}, {1: POS, 2: NEG}) == 1.0

    def test_inverted_prediction_is_negative(self):
        r2 = r_squared({1: POS, 2: NEG}, {1: NEG, 2: POS})
        assert r2 < 0

    def test_constant_truth_convention(self):
        assert r_squared({1: POS, 2: POS}, {1: POS, 2: POS}) == 1.0
        assert r_squared({1: POS, 2: NEG}, {1: POS, 2: POS}) == 0.0

    def test_empty(self):
        assert r_squared({}, {}) == 0.0


class TestStateMetricsAggregate:
    def test_restricts_to_common_keys(self):
        m = state_metrics({1: POS, 9: NEG}, {1: POS, 2: NEG})
        assert m.evaluated == 1
        assert m.accuracy == 1.0
        assert m.mae == 0.0

    def test_mixed_quality(self):
        m = state_metrics({1: POS, 2: POS, 3: NEG}, {1: POS, 2: NEG, 3: NEG})
        assert m.evaluated == 3
        assert m.accuracy == pytest.approx(2 / 3)
        assert m.mae == pytest.approx(2 / 3)
