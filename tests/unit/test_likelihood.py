"""Unit tests for the MFC likelihood machinery (Sec. III-B)."""

import pytest

from repro.core.likelihood import (
    additive_score,
    g_link,
    iter_simple_paths,
    network_likelihood,
    node_infection_probability,
    path_probability,
)
from repro.errors import InvalidModelParameterError
from repro.graphs.signed_digraph import SignedDiGraph
from repro.types import NodeState, Sign


class TestGLink:
    def test_consistent_positive_link_boosted(self):
        assert g_link(
            NodeState.POSITIVE, Sign.POSITIVE, NodeState.POSITIVE, 0.2, alpha=3.0
        ) == pytest.approx(0.6)

    def test_consistent_positive_link_clamped(self):
        assert g_link(
            NodeState.POSITIVE, Sign.POSITIVE, NodeState.POSITIVE, 0.5, alpha=3.0
        ) == 1.0

    def test_consistent_negative_link_raw_weight(self):
        # s(x) * s(x,y) = +1 * -1 = -1 = s(y): consistent negative link.
        assert g_link(
            NodeState.POSITIVE, Sign.NEGATIVE, NodeState.NEGATIVE, 0.2, alpha=3.0
        ) == pytest.approx(0.2)

    def test_inconsistent_link_zero(self):
        assert g_link(
            NodeState.POSITIVE, Sign.POSITIVE, NodeState.NEGATIVE, 0.9, alpha=3.0
        ) == 0.0

    def test_inconsistent_value_override(self):
        assert g_link(
            NodeState.POSITIVE,
            Sign.POSITIVE,
            NodeState.NEGATIVE,
            0.9,
            alpha=3.0,
            inconsistent_value=1.0,
        ) == 1.0

    def test_inactive_endpoint_scores_inconsistent(self):
        assert g_link(
            NodeState.INACTIVE, Sign.POSITIVE, NodeState.POSITIVE, 0.9, alpha=3.0
        ) == 0.0


class TestPathProbability:
    def test_product_along_consistent_path(self, small_cascade_tree):
        # r(+) -> a(+) via +0.5 (g = min(1, 1.5) = 1), a(+) -> c(+) via +0.9 (g = 1)
        assert path_probability(small_cascade_tree, ["r", "a", "c"], alpha=3.0) == 1.0

    def test_negative_link_consistent(self, small_cascade_tree):
        # r(+) -> b(-) via -0.4: consistent, g = 0.4 (no boost).
        assert path_probability(small_cascade_tree, ["r", "b"], alpha=3.0) == pytest.approx(0.4)

    def test_zero_short_circuits(self, small_cascade_tree):
        # Make c's state inconsistent with a -> c.
        small_cascade_tree.set_state("c", NodeState.NEGATIVE)
        assert path_probability(small_cascade_tree, ["r", "a", "c"], alpha=3.0) == 0.0


class TestIterSimplePaths:
    def test_enumerates_all_simple_paths(self):
        g = SignedDiGraph()
        g.add_edge("s", "a", 1, 0.5)
        g.add_edge("s", "b", 1, 0.5)
        g.add_edge("a", "t", 1, 0.5)
        g.add_edge("b", "t", 1, 0.5)
        paths = sorted(iter_simple_paths(g, "s", "t", max_paths=10, max_length=10))
        assert paths == [["s", "a", "t"], ["s", "b", "t"]]

    def test_respects_max_paths(self):
        g = SignedDiGraph()
        for i in range(5):
            g.add_edge("s", f"m{i}", 1, 0.5)
            g.add_edge(f"m{i}", "t", 1, 0.5)
        paths = list(iter_simple_paths(g, "s", "t", max_paths=3, max_length=10))
        assert len(paths) == 3

    def test_avoids_cycles(self):
        g = SignedDiGraph()
        g.add_edge("s", "a", 1, 0.5)
        g.add_edge("a", "s", 1, 0.5)
        g.add_edge("a", "t", 1, 0.5)
        paths = list(iter_simple_paths(g, "s", "t", max_paths=10, max_length=10))
        assert paths == [["s", "a", "t"]]


class TestNodeInfectionProbability:
    def test_initiator_matching_state_is_one(self, small_cascade_tree):
        p = node_infection_probability(
            small_cascade_tree, "r", {"r": NodeState.POSITIVE}, alpha=3.0
        )
        assert p == 1.0

    def test_initiator_mismatched_state_is_zero(self, small_cascade_tree):
        p = node_infection_probability(
            small_cascade_tree, "r", {"r": NodeState.NEGATIVE}, alpha=3.0
        )
        assert p == 0.0

    def test_unique_tree_path(self, small_cascade_tree):
        p = node_infection_probability(
            small_cascade_tree, "b", {"r": NodeState.POSITIVE}, alpha=3.0
        )
        assert p == pytest.approx(0.4)

    def test_noisy_or_over_parallel_paths(self):
        g = SignedDiGraph()
        g.add_edge("s", "a", -1, 0.5)
        g.add_edge("s", "b", -1, 0.5)
        g.add_edge("a", "t", 1, 0.1)
        g.add_edge("b", "t", 1, 0.1)
        g.set_states(
            {
                "s": NodeState.POSITIVE,
                "a": NodeState.NEGATIVE,
                "b": NodeState.NEGATIVE,
                "t": NodeState.NEGATIVE,
            }
        )
        # Each path: 0.5 (negative consistent) * 0.3 (boosted 3*0.1) = 0.15.
        p = node_infection_probability(g, "t", {"s": NodeState.POSITIVE}, alpha=3.0)
        assert p == pytest.approx(1 - (1 - 0.15) ** 2)

    def test_unreachable_node_zero(self, small_cascade_tree):
        p = node_infection_probability(
            small_cascade_tree, "r", {"c": NodeState.POSITIVE}, alpha=3.0
        )
        assert p == 0.0

    def test_alpha_below_one_rejected(self, small_cascade_tree):
        with pytest.raises(InvalidModelParameterError):
            node_infection_probability(
                small_cascade_tree, "a", {"r": NodeState.POSITIVE}, alpha=0.5
            )

    def test_initiator_absent_from_graph_ignored(self, small_cascade_tree):
        p = node_infection_probability(
            small_cascade_tree,
            "a",
            {"r": NodeState.POSITIVE, "zzz": NodeState.POSITIVE},
            alpha=3.0,
        )
        assert p == 1.0


class TestNetworkLikelihood:
    def test_perfect_explanation(self, small_cascade_tree):
        # With alpha=3, edges r->a (g=1), a->c (g=1), r->b (0.4), b->d (g ... )
        # b(-) -> d(-) via +0.3: consistent, boosted to 0.9.
        likelihood = network_likelihood(
            small_cascade_tree, {"r": NodeState.POSITIVE}, alpha=3.0
        )
        assert likelihood == pytest.approx(1.0 * 1.0 * 1.0 * 0.4 * (0.4 * 0.9))

    def test_zero_when_any_node_unexplained(self, small_cascade_tree):
        likelihood = network_likelihood(
            small_cascade_tree, {"a": NodeState.POSITIVE}, alpha=3.0
        )
        assert likelihood == 0.0  # r is unreachable from a

    def test_additive_score_counts_initiators(self, small_cascade_tree):
        score = additive_score(small_cascade_tree, {"r": NodeState.POSITIVE}, alpha=3.0)
        assert score == pytest.approx(1.0 + 1.0 + 1.0 + 0.4 + 0.36)
