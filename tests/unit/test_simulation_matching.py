"""Unit tests for the simulation-matching detector."""

import pytest

from repro.errors import InvalidModelParameterError
from repro.extensions.simulation_matching import SimulationMatchingDetector
from repro.graphs.generators.trees import path_graph, star_graph
from repro.graphs.signed_digraph import SignedDiGraph
from repro.types import NodeState


def infected(graph: SignedDiGraph) -> SignedDiGraph:
    for node in graph.nodes():
        graph.set_state(node, NodeState.POSITIVE)
    return graph


class TestParameters:
    def test_bad_trials_rejected(self):
        with pytest.raises(InvalidModelParameterError):
            SimulationMatchingDetector(trials=0)

    def test_bad_budget_rejected(self):
        with pytest.raises(InvalidModelParameterError):
            SimulationMatchingDetector(budget=0)


class TestDetection:
    def test_star_hub_detected(self):
        g = infected(star_graph(5, weight=1.0))
        result = SimulationMatchingDetector(trials=4, seed=1).detect(g)
        assert "0" not in result.initiators or True  # hub label is int 0
        assert 0 in result.initiators

    def test_path_source_detected(self):
        g = infected(path_graph(4, weight=1.0))
        result = SimulationMatchingDetector(trials=4, seed=1).detect(g)
        assert 0 in result.initiators

    def test_states_reported(self):
        g = infected(star_graph(3, weight=1.0))
        result = SimulationMatchingDetector(trials=4, seed=1).detect(g)
        assert set(result.states) == result.initiators
        assert all(s is NodeState.POSITIVE for s in result.states.values())

    def test_singleton_component(self):
        g = SignedDiGraph()
        g.add_node("solo", NodeState.NEGATIVE)
        result = SimulationMatchingDetector(trials=2, seed=1).detect(g)
        assert result.initiators == {"solo"}
        assert result.states["solo"] is NodeState.NEGATIVE

    def test_budget_respected(self):
        g = infected(path_graph(6, weight=0.6))
        result = SimulationMatchingDetector(
            trials=4, budget=2, seed=1
        ).detect(g)
        assert 1 <= len(result.initiators) <= 2


class TestMatchScore:
    def test_perfect_match_scores_one(self):
        g = infected(star_graph(3, weight=1.0))
        detector = SimulationMatchingDetector(trials=3, seed=1)
        score = detector.match_score(g, {0: NodeState.POSITIVE}, stream=0)
        assert score == pytest.approx(1.0)

    def test_partial_match_scores_less(self):
        g = infected(star_graph(3, weight=1.0))
        detector = SimulationMatchingDetector(trials=3, seed=1)
        leaf_score = detector.match_score(g, {1: NodeState.POSITIVE}, stream=0)
        assert leaf_score < 1.0

    def test_hub_beats_leaf(self):
        g = infected(star_graph(4, weight=1.0))
        detector = SimulationMatchingDetector(trials=3, seed=1)
        hub = detector.match_score(g, {0: NodeState.POSITIVE}, stream=0)
        leaf = detector.match_score(g, {2: NodeState.POSITIVE}, stream=0)
        assert hub > leaf
