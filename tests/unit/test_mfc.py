"""Unit tests for the MFC diffusion model (paper Algorithm 1)."""

import pytest

from repro.diffusion.mfc import MFCModel, boosted_probability
from repro.errors import InvalidModelParameterError, InvalidSeedError
from repro.graphs.signed_digraph import SignedDiGraph
from repro.types import NodeState, Sign


def line(sign: int, weight: float) -> SignedDiGraph:
    g = SignedDiGraph()
    g.add_edge("u", "v", sign, weight)
    return g


class TestBoostedProbability:
    def test_positive_link_boosted(self):
        assert boosted_probability(0.2, Sign.POSITIVE, 3.0) == pytest.approx(0.6)

    def test_positive_link_clamped_at_one(self):
        assert boosted_probability(0.5, Sign.POSITIVE, 3.0) == 1.0

    def test_negative_link_not_boosted(self):
        assert boosted_probability(0.2, Sign.NEGATIVE, 3.0) == pytest.approx(0.2)


class TestParameters:
    def test_alpha_below_one_rejected(self):
        with pytest.raises(InvalidModelParameterError):
            MFCModel(alpha=0.5)

    def test_alpha_one_allowed(self):
        MFCModel(alpha=1.0)

    def test_bad_max_rounds_rejected(self):
        with pytest.raises(InvalidModelParameterError):
            MFCModel(max_rounds=0)


class TestSeedValidation:
    def test_empty_seeds_rejected(self):
        with pytest.raises(InvalidSeedError):
            MFCModel().run(line(1, 0.5), {})

    def test_unknown_seed_node_rejected(self):
        with pytest.raises(InvalidSeedError):
            MFCModel().run(line(1, 0.5), {"zzz": NodeState.POSITIVE})

    def test_inactive_seed_state_rejected(self):
        with pytest.raises(InvalidSeedError):
            MFCModel().run(line(1, 0.5), {"u": NodeState.INACTIVE})


class TestPropagation:
    def test_certain_positive_link_activates_with_same_state(self):
        result = MFCModel(alpha=3.0).run(line(1, 1.0), {"u": NodeState.POSITIVE}, rng=1)
        assert result.final_states["v"] is NodeState.POSITIVE

    def test_certain_negative_link_flips_state(self):
        # s(v) = s(u) * s_D(u, v) = +1 * -1 = -1
        result = MFCModel(alpha=3.0).run(line(-1, 1.0), {"u": NodeState.POSITIVE}, rng=1)
        assert result.final_states["v"] is NodeState.NEGATIVE

    def test_negative_seed_through_negative_link_goes_positive(self):
        result = MFCModel(alpha=3.0).run(line(-1, 1.0), {"u": NodeState.NEGATIVE}, rng=1)
        assert result.final_states["v"] is NodeState.POSITIVE

    def test_zero_weight_never_activates(self):
        for seed in range(20):
            result = MFCModel(alpha=3.0).run(line(1, 0.0), {"u": NodeState.POSITIVE}, rng=seed)
            assert "v" not in result.final_states or not result.final_states["v"].is_active

    def test_boost_makes_subunit_weight_certain(self):
        # alpha * w = 3 * 0.4 >= 1 on a positive link.
        for seed in range(20):
            result = MFCModel(alpha=3.0).run(line(1, 0.4), {"u": NodeState.POSITIVE}, rng=seed)
            assert result.final_states["v"] is NodeState.POSITIVE

    def test_negative_link_not_boosted_statistically(self):
        hits = sum(
            1
            for seed in range(400)
            if MFCModel(alpha=3.0)
            .run(line(-1, 0.4), {"u": NodeState.POSITIVE}, rng=seed)
            .final_states.get("v", NodeState.INACTIVE)
            .is_active
        )
        assert 0.3 < hits / 400 < 0.5  # ~= raw weight 0.4, not 1.0

    def test_single_attempt_per_pair(self):
        # Even across many rounds the pair (u, v) is attempted once.
        g = SignedDiGraph()
        g.add_edge("u", "v", -1, 0.0)  # never succeeds
        g.add_edge("u", "w", 1, 1.0)
        g.add_edge("w", "u", 1, 1.0)  # keeps cascade alive via flip-backs
        result = MFCModel(alpha=3.0).run(g, {"u": NodeState.POSITIVE}, rng=3)
        attempts = [e for e in result.events if e.target == "v"]
        assert attempts == []


class TestFlipping:
    def build_flip_gadget(self) -> SignedDiGraph:
        """F activates G via a negative link in round 1; H (trusted by G)
        reaches G one round later and can flip it."""
        g = SignedDiGraph()
        g.add_edge("s", "f", 1, 1.0)
        g.add_edge("s", "h0", 1, 1.0)
        g.add_edge("h0", "h", 1, 1.0)
        g.add_edge("f", "g", -1, 1.0)
        g.add_edge("h", "g", 1, 1.0)
        return g

    def test_trusted_neighbor_flips_state(self):
        result = MFCModel(alpha=3.0).run(
            self.build_flip_gadget(), {"s": NodeState.POSITIVE}, rng=5
        )
        # F sets g to NEGATIVE in round 2; H flips it to POSITIVE in round 3.
        assert result.final_states["g"] is NodeState.POSITIVE
        flips = [e for e in result.events if e.was_flip]
        assert len(flips) == 1
        assert flips[0].target == "g" and flips[0].source == "h"

    def test_flips_disabled_keeps_first_activation(self):
        result = MFCModel(alpha=3.0, allow_flips=False).run(
            self.build_flip_gadget(), {"s": NodeState.POSITIVE}, rng=5
        )
        assert result.final_states["g"] is NodeState.NEGATIVE
        assert not any(e.was_flip for e in result.events)

    def test_distrusted_neighbor_cannot_flip(self):
        g = SignedDiGraph()
        g.add_edge("s", "f", 1, 1.0)
        g.add_edge("s", "h0", 1, 1.0)
        g.add_edge("h0", "h", 1, 1.0)
        g.add_edge("f", "g", 1, 1.0)   # G activated POSITIVE first
        g.add_edge("h", "g", -1, 1.0)  # distrusted late arrival
        result = MFCModel(alpha=3.0).run(g, {"s": NodeState.NEGATIVE}, rng=5)
        # f sets g to NEGATIVE (via +1 link from NEGATIVE source).
        assert result.final_states["g"] is NodeState.NEGATIVE
        assert not any(e.was_flip for e in result.events)

    def test_flipped_node_does_not_reattempt_exhausted_pairs(self):
        """One attempt per ordered pair, even after a flip.

        A is activated POSITIVE and immediately spreads to B; a round
        later R flips A to NEGATIVE. A re-enters the frontier, but the
        (A, B) pair is already exhausted, so B must keep the POSITIVE
        state from A's first (pre-flip) attempt — a flipped node never
        re-rolls pairs it already tried.
        """
        g = SignedDiGraph()
        g.add_edge("P", "A", 1, 1.0)   # round 1: A := +
        g.add_edge("A", "B", 1, 1.0)   # round 2: B := + (the only attempt)
        g.add_edge("Q", "R", 1, 1.0)   # round 1: R := -
        g.add_edge("R", "A", 1, 1.0)   # round 2: trusted flip, A := -
        result = MFCModel(alpha=3.0).run(
            g, {"P": NodeState.POSITIVE, "Q": NodeState.NEGATIVE}, rng=5
        )
        assert result.final_states["A"] is NodeState.NEGATIVE
        assert any(e.was_flip and e.target == "A" for e in result.events)
        # B saw exactly one attempt and keeps A's pre-flip state.
        b_events = [e for e in result.events if e.target == "B"]
        assert len(b_events) == 1
        assert not b_events[0].was_flip
        assert result.final_states["B"] is NodeState.POSITIVE

    def test_same_state_trusted_neighbor_does_not_reattempt(self):
        g = SignedDiGraph()
        g.add_edge("a", "g", 1, 1.0)
        g.add_edge("b", "g", 1, 1.0)
        result = MFCModel(alpha=3.0).run(
            g, {"a": NodeState.POSITIVE, "b": NodeState.POSITIVE}, rng=5
        )
        activations = [e for e in result.events if e.target == "g"]
        assert len(activations) == 1  # second attempt skipped: same state


class TestResultStructure:
    def test_seed_events_are_round_zero(self):
        result = MFCModel().run(line(1, 1.0), {"u": NodeState.POSITIVE}, rng=1)
        seed_events = [e for e in result.events if e.source is None]
        assert len(seed_events) == 1
        assert seed_events[0].round == 0

    def test_activation_links_point_to_final_activator(self):
        g = SignedDiGraph()
        g.add_edge("s", "f", 1, 1.0)
        g.add_edge("s", "h0", 1, 1.0)
        g.add_edge("h0", "h", 1, 1.0)
        g.add_edge("f", "g", -1, 1.0)
        g.add_edge("h", "g", 1, 1.0)
        result = MFCModel(alpha=3.0).run(g, {"s": NodeState.POSITIVE}, rng=5)
        links = result.activation_links()
        assert links["g"] == "h"  # the flip supersedes f's activation

    def test_infected_network_carries_states(self):
        result = MFCModel().run(line(-1, 1.0), {"u": NodeState.POSITIVE}, rng=1)
        g_i = result.infected_network(line(-1, 1.0))
        assert g_i.state("u") is NodeState.POSITIVE
        assert g_i.state("v") is NodeState.NEGATIVE
        assert g_i.has_edge("u", "v")

    def test_cascade_forest_is_rooted_at_seeds(self):
        g = SignedDiGraph()
        g.add_edge("s", "a", 1, 1.0)
        g.add_edge("a", "b", 1, 1.0)
        result = MFCModel().run(g, {"s": NodeState.POSITIVE}, rng=1)
        forest = result.cascade_forest(g)
        assert forest.in_degree("s") == 0
        assert forest.in_degree("a") == 1
        assert forest.in_degree("b") == 1

    def test_determinism_given_seed(self):
        g = SignedDiGraph()
        for i in range(10):
            g.add_edge(i, (i + 1) % 10, 1 if i % 2 else -1, 0.5)
        a = MFCModel().run(g, {0: NodeState.POSITIVE}, rng=99)
        b = MFCModel().run(g, {0: NodeState.POSITIVE}, rng=99)
        assert a.final_states == b.final_states
        assert a.events == b.events
