"""Unit tests for the kernel backend dispatcher and its bugfix satellites.

Everything here runs without numpy installed — the numpy-absent paths
are exercised by stubbing the import machinery, so this module is part
of the pure-python tier-1 surface (the CI no-numpy leg relies on that).
"""

import pickle
import random
import sys
import warnings

import pytest

import repro.kernel.backends as backends
from repro.errors import ConfigError, DynamicProgramError
from repro.graphs.generators.random_graphs import signed_erdos_renyi
from repro.kernel import compile_graph
from repro.kernel.cascade import (
    check_seeds_compiled,
    run_ic_compiled,
    run_mfc_compiled,
)
from repro.kernel.tree_dp import _decision_typecode
from repro.obs import MetricsRecorder, using_recorder
from repro.runtime import executor
from repro.runtime.cache import graph_digest, model_digest
from repro.runtime.config import RuntimeConfig
from repro.types import NodeState


@pytest.fixture(autouse=True)
def _clean_dispatch_state(monkeypatch):
    """Isolate each test from cached probes, instances and env overrides."""
    monkeypatch.delenv(backends.ENV_VAR, raising=False)
    backends._reset_for_tests()
    yield
    backends._reset_for_tests()


def _without_numpy(monkeypatch):
    """Make ``import numpy`` raise ImportError inside this test."""
    for name in [m for m in sys.modules if m == "numpy" or m.startswith("numpy.")]:
        monkeypatch.delitem(sys.modules, name)
    # A None entry makes the import system raise ImportError immediately.
    monkeypatch.setitem(sys.modules, "numpy", None)


class TestDefaultAndResolution:
    def test_default_is_python(self):
        assert backends.default_backend_name() == "python"
        assert backends.resolve_backend().name == "python"

    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.setenv(backends.ENV_VAR, "numpy")
        assert backends.default_backend_name() == "numpy"

    def test_env_var_typo_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(backends.ENV_VAR, "nunpy")
        with pytest.raises(ConfigError):
            backends.default_backend_name()

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError):
            backends.resolve_backend("fortran")

    def test_python_backend_is_bit_tier(self):
        engine = backends.resolve_backend("python")
        assert engine.name == "python"
        assert engine.tier == backends.BIT_IDENTICAL

    def test_instances_are_cached(self):
        assert backends.resolve_backend("python") is backends.resolve_backend(
            "python"
        )


class TestNumpyAbsent:
    def test_available_backends_shrink(self, monkeypatch):
        _without_numpy(monkeypatch)
        assert backends.available_backends() == ("python",)
        assert backends.numpy_available() is False

    def test_numpy_request_falls_back_with_one_warning(self, monkeypatch):
        _without_numpy(monkeypatch)
        with pytest.warns(RuntimeWarning, match="falling back"):
            engine = backends.resolve_backend("numpy")
        assert engine.name == "python"
        # Second request: same fallback, but silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert backends.resolve_backend("numpy").name == "python"

    def test_fallback_increments_counter(self, monkeypatch):
        _without_numpy(monkeypatch)
        recorder = MetricsRecorder()
        with using_recorder(recorder):
            with pytest.warns(RuntimeWarning):
                backends.resolve_backend("numpy")
        assert recorder.metrics.counters.get("kernel.backend.fallback") == 1

    def test_auto_quietly_picks_python(self, monkeypatch):
        _without_numpy(monkeypatch)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert backends.resolve_backend("auto").name == "python"

    def test_cascade_still_runs_on_fallback(self, monkeypatch):
        _without_numpy(monkeypatch)
        graph = signed_erdos_renyi(20, 0.2, weight_range=(0.5, 1.0), rng=3)
        compiled = compile_graph(graph)
        node = sorted(graph.nodes(), key=repr)[0]
        validated = check_seeds_compiled(compiled, {node: NodeState.POSITIVE})
        with pytest.warns(RuntimeWarning):
            result = run_mfc_compiled(
                compiled,
                validated,
                random.Random(1),
                alpha=3.0,
                allow_flips=True,
                max_rounds=10**9,
                backend="numpy",
            )
        assert node in result.final_states


class TestDigestForking:
    """Statistical backends fork cache keys; bit-tier selections do not."""

    def test_explicit_python_keeps_default_keys(self):
        from repro.diffusion.mfc import MFCModel

        assert model_digest(MFCModel()) == model_digest(MFCModel(backend="python"))

    def test_numpy_absent_resolves_to_bit_tier_keys(self, monkeypatch):
        from repro.diffusion.mfc import MFCModel

        _without_numpy(monkeypatch)
        with pytest.warns(RuntimeWarning):
            forked = model_digest(MFCModel(backend="numpy"))
        assert forked == model_digest(MFCModel())


class TestDecisionTypecodeGuard:
    """array('h') decision rows were a silent overflow away from garbage."""

    def test_small_caps_pack_into_shorts(self):
        from array import array

        code = _decision_typecode(100)
        assert array(code).itemsize * 8 >= 9  # holds 2*100+1

    def test_widens_before_overflowing(self):
        # 2*cap+1 beyond int16 must widen instead of wrapping negative.
        code = _decision_typecode(20_000)
        from array import array

        assert array(code).itemsize >= 4
        huge = _decision_typecode((1 << 40))
        assert array(huge).itemsize == 8

    def test_raises_past_q_range(self):
        with pytest.raises(DynamicProgramError):
            _decision_typecode(1 << 63)


class TestPicklableProbe:
    def test_narrow_exceptions_only(self):
        class Boom:
            def __reduce__(self):
                raise OSError("disk on fire")

        with pytest.raises(OSError):
            executor._probe_picklable(Boom())

    def test_unpicklable_returns_false(self):
        assert executor._probe_picklable(lambda: None) is False
        assert executor._probe_picklable(42) is True

    def test_payload_probe_memoized_by_identity(self):
        calls = []

        class Counting:
            def __reduce__(self):
                calls.append(1)
                return (dict, ())

        payload = Counting()
        executor._PICKLE_PROBE_MEMO.clear()
        assert executor._picklable(sum, payload, [1, 2])
        assert executor._picklable(sum, payload, [3, 4])
        assert len(calls) == 1  # second call hit the identity memo

    def test_memo_verifies_identity_not_just_id(self):
        executor._PICKLE_PROBE_MEMO.clear()
        payload = (1, 2, 3)
        assert executor._picklable(sum, payload, [])
        # Forge an entry under a different object with the same id slot:
        # a stale or recycled entry must be ignored, not trusted.
        (key,) = [k for k in executor._PICKLE_PROBE_MEMO]
        executor._PICKLE_PROBE_MEMO[key] = (object(), False)
        assert executor._picklable(sum, payload, []) is True

    def test_run_trials_records_pickle_fallback(self):
        recorder = MetricsRecorder()
        config = RuntimeConfig(workers=2)
        outcome = executor.run_trials(
            lambda payload, spec: spec,  # lambdas cannot pickle
            None,
            [1, 2, 3],
            config=config,
            recorder=recorder,
        )
        assert outcome.results == [1, 2, 3]
        assert outcome.report.fallback_reason == "inputs not picklable"
        assert recorder.metrics.counters.get("runtime.pickle_fallback") == 1


class TestGraphDigestWarning:
    def test_versionless_graph_warns_once_per_type(self):
        class BareGraph:
            def nodes(self):
                return [1]

            def state(self, node):
                return NodeState.POSITIVE

            def edges(self):
                return []

        from repro.runtime import cache as cache_module

        cache_module._UNMEMOIZED_WARNED.discard(BareGraph)
        recorder = MetricsRecorder()
        with using_recorder(recorder):
            with pytest.warns(RuntimeWarning, match="version"):
                first = graph_digest(BareGraph())
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                second = graph_digest(BareGraph())
        assert first == second
        assert recorder.metrics.counters.get("runtime.digest_unmemoized") == 2

    def test_real_graph_stays_silent(self):
        graph = signed_erdos_renyi(10, 0.2, rng=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            graph_digest(graph)
            graph_digest(graph)


class TestRecordEventsToggle:
    """Trace-free cascades: same spread, empty events, counters guarded.

    Runs on the python backend so it is part of the no-numpy tier-1
    surface; the numpy backend's equivalence is pinned by
    ``tests/property/test_backend_identity.py``.
    """

    def _compiled(self):
        graph = signed_erdos_renyi(40, 0.25, weight_range=(0.4, 0.9), rng=7)
        compiled = compile_graph(graph)
        nodes = sorted(graph.nodes(), key=repr)[:3]
        validated = check_seeds_compiled(
            compiled,
            {
                node: NodeState.POSITIVE if i % 2 else NodeState.NEGATIVE
                for i, node in enumerate(nodes)
            },
        )
        return compiled, validated

    def test_mfc_trace_free_matches_recorded_run(self):
        compiled, validated = self._compiled()
        recorded = run_mfc_compiled(
            compiled, validated, random.Random(5), 2.0, True, 10**9
        )
        bare = run_mfc_compiled(
            compiled, validated, random.Random(5), 2.0, True, 10**9,
            record_events=False,
        )
        assert bare.events == []
        assert bare.final_states == recorded.final_states
        assert bare.rounds == recorded.rounds
        assert bare.seeds == validated

    def test_ic_trace_free_matches_recorded_run(self):
        compiled, validated = self._compiled()
        recorded = run_ic_compiled(compiled, validated, random.Random(6), True)
        bare = run_ic_compiled(
            compiled, validated, random.Random(6), True, record_events=False
        )
        assert bare.events == []
        assert bare.final_states == recorded.final_states
        assert bare.rounds == recorded.rounds

    def test_recorder_skips_trace_counters_on_trace_free_runs(self):
        compiled, validated = self._compiled()
        recorder = MetricsRecorder()
        with using_recorder(recorder):
            run_mfc_compiled(
                compiled, validated, random.Random(5), 2.0, True, 10**9,
                record_events=False,
            )
        counters = recorder.metrics.counters
        assert counters["kernel.mfc.cascades"] == 1
        assert counters["kernel.mfc.attempts"] > 0
        # Trace-derived counters are skipped, not reported as zero.
        assert "kernel.mfc.activations" not in counters
        assert "kernel.mfc.flips" not in counters

    def test_recorder_still_counts_traced_runs(self):
        compiled, validated = self._compiled()
        recorder = MetricsRecorder()
        with using_recorder(recorder):
            run_mfc_compiled(
                compiled, validated, random.Random(5), 2.0, True, 10**9
            )
        assert "kernel.mfc.activations" in recorder.metrics.counters

    def test_toggle_survives_numpy_fallback(self, monkeypatch):
        _without_numpy(monkeypatch)
        compiled, validated = self._compiled()
        with pytest.warns(RuntimeWarning):
            result = run_mfc_compiled(
                compiled, validated, random.Random(5), 2.0, True, 10**9,
                backend="numpy", record_events=False,
            )
        assert result.events == [] and result.final_states
