"""Unit tests for the shared primitive types."""

import pytest

from repro.types import INITIATOR_STATES, NodeState, Sign


class TestSign:
    def test_positive_value(self):
        assert int(Sign.POSITIVE) == 1

    def test_negative_value(self):
        assert int(Sign.NEGATIVE) == -1

    def test_from_value_positive(self):
        assert Sign.from_value(1) is Sign.POSITIVE

    def test_from_value_negative(self):
        assert Sign.from_value(-1) is Sign.NEGATIVE

    @pytest.mark.parametrize("bad", [0, 2, -2, 17])
    def test_from_value_rejects_out_of_alphabet(self, bad):
        with pytest.raises(ValueError):
            Sign.from_value(bad)

    def test_flipped_is_involution(self):
        for sign in Sign:
            assert sign.flipped().flipped() is sign

    def test_sign_product_matches_paper_algebra(self):
        assert Sign.POSITIVE * Sign.NEGATIVE == -1
        assert Sign.NEGATIVE * Sign.NEGATIVE == 1


class TestNodeState:
    def test_alphabet_values(self):
        assert int(NodeState.POSITIVE) == 1
        assert int(NodeState.NEGATIVE) == -1
        assert int(NodeState.INACTIVE) == 0
        assert int(NodeState.UNKNOWN) == 2

    def test_is_active_only_for_opinions(self):
        assert NodeState.POSITIVE.is_active
        assert NodeState.NEGATIVE.is_active
        assert not NodeState.INACTIVE.is_active
        assert not NodeState.UNKNOWN.is_active

    def test_from_value_round_trip(self):
        for state in NodeState:
            assert NodeState.from_value(int(state)) is state

    def test_from_value_rejects_garbage(self):
        with pytest.raises(ValueError):
            NodeState.from_value(5)

    def test_times_implements_mfc_update_rule(self):
        # s(v) = s(u) * s_D(u, v)
        assert NodeState.POSITIVE.times(Sign.POSITIVE) is NodeState.POSITIVE
        assert NodeState.POSITIVE.times(Sign.NEGATIVE) is NodeState.NEGATIVE
        assert NodeState.NEGATIVE.times(Sign.POSITIVE) is NodeState.NEGATIVE
        assert NodeState.NEGATIVE.times(Sign.NEGATIVE) is NodeState.POSITIVE

    @pytest.mark.parametrize("state", [NodeState.INACTIVE, NodeState.UNKNOWN])
    def test_times_rejects_non_opinionated_source(self, state):
        with pytest.raises(ValueError):
            state.times(Sign.POSITIVE)

    def test_initiator_states_are_the_binary_opinions(self):
        assert set(INITIATOR_STATES) == {NodeState.POSITIVE, NodeState.NEGATIVE}
