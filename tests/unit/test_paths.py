"""Unit tests for the path algorithms."""

import pytest

from repro.errors import NodeNotFoundError
from repro.graphs.paths import (
    diffusion_distances,
    hop_distances,
    most_probable_path,
    reachable_from,
)
from repro.graphs.signed_digraph import SignedDiGraph


@pytest.fixture
def diamond() -> SignedDiGraph:
    """s -> a -> t (0.9 * 0.9) and s -> b -> t (0.5 * 0.5)."""
    g = SignedDiGraph()
    g.add_edge("s", "a", 1, 0.9)
    g.add_edge("a", "t", 1, 0.9)
    g.add_edge("s", "b", 1, 0.5)
    g.add_edge("b", "t", 1, 0.5)
    return g


class TestHopDistances:
    def test_directed(self, diamond):
        distances = hop_distances(diamond, "s")
        assert distances == {"s": 0, "a": 1, "b": 1, "t": 2}

    def test_unreachable_absent(self, diamond):
        distances = hop_distances(diamond, "t")
        assert distances == {"t": 0}

    def test_undirected_view(self, diamond):
        distances = hop_distances(diamond, "t", directed=False)
        assert distances["s"] == 2

    def test_missing_source_raises(self, diamond):
        with pytest.raises(NodeNotFoundError):
            hop_distances(diamond, "zzz")


class TestReachableFrom:
    def test_covers_descendants(self, diamond):
        assert reachable_from(diamond, "s") == {"s", "a", "b", "t"}
        assert reachable_from(diamond, "a") == {"a", "t"}


class TestDiffusionDistances:
    def test_strongest_route_wins(self, diamond):
        strengths = diffusion_distances(diamond, "s", alpha=1.0)
        assert strengths["t"] == pytest.approx(0.81)

    def test_source_strength_is_one(self, diamond):
        assert diffusion_distances(diamond, "s", alpha=1.0)["s"] == pytest.approx(1.0)

    def test_alpha_boost_applies_to_positive_links(self, diamond):
        strengths = diffusion_distances(diamond, "s", alpha=2.0)
        # 0.9 boosts to 1.0: the strong route becomes certain.
        assert strengths["t"] == pytest.approx(1.0)

    def test_negative_links_not_boosted(self):
        g = SignedDiGraph()
        g.add_edge("s", "t", -1, 0.5)
        strengths = diffusion_distances(g, "s", alpha=3.0)
        assert strengths["t"] == pytest.approx(0.5)

    def test_missing_source_raises(self, diamond):
        with pytest.raises(NodeNotFoundError):
            diffusion_distances(diamond, "zzz")


class TestMostProbablePath:
    def test_returns_strongest_path(self, diamond):
        path, strength = most_probable_path(diamond, "s", "t", alpha=1.0)
        assert path == ["s", "a", "t"]
        assert strength == pytest.approx(0.81)

    def test_unreachable_returns_none(self, diamond):
        assert most_probable_path(diamond, "t", "s", alpha=1.0) is None

    def test_trivial_path(self, diamond):
        path, strength = most_probable_path(diamond, "s", "s")
        assert path == ["s"]
        assert strength == pytest.approx(1.0)

    def test_prefers_longer_but_stronger_route(self):
        g = SignedDiGraph()
        g.add_edge("s", "t", 1, 0.1)             # direct but weak
        g.add_edge("s", "m", 1, 0.9)
        g.add_edge("m", "t", 1, 0.9)             # two hops, 0.81 total
        path, strength = most_probable_path(g, "s", "t", alpha=1.0)
        assert path == ["s", "m", "t"]
        assert strength == pytest.approx(0.81)

    def test_missing_endpoint_raises(self, diamond):
        with pytest.raises(NodeNotFoundError):
            most_probable_path(diamond, "s", "zzz")
