"""Unit tests for graph (de)serialisation."""

import gzip

import pytest

from repro.errors import GraphFormatError
from repro.graphs.io import (
    graph_from_dict,
    graph_to_dict,
    iter_snap_edges,
    load_graph_json,
    read_snap_signed_edgelist,
    save_graph_json,
    write_snap_signed_edgelist,
)
from repro.graphs.signed_digraph import SignedDiGraph
from repro.types import NodeState, Sign

SNAP_SAMPLE = """# Directed graph: soc-sign-epinions
# Nodes: 4 Edges: 4
# FromNodeId\tToNodeId\tSign
0\t1\t1
1\t2\t-1
2\t3\t1
3\t3\t1
"""


@pytest.fixture
def snap_file(tmp_path):
    path = tmp_path / "sample.txt"
    path.write_text(SNAP_SAMPLE)
    return path


class TestSnapParsing:
    def test_reads_edges_and_signs(self, snap_file):
        g = read_snap_signed_edgelist(snap_file)
        assert g.number_of_edges() == 3  # self-loop dropped
        assert g.sign(1, 2) is Sign.NEGATIVE
        assert g.sign(0, 1) is Sign.POSITIVE

    def test_self_loops_kept_on_request(self, snap_file):
        g = read_snap_signed_edgelist(snap_file, skip_self_loops=False)
        assert g.number_of_edges() == 4
        assert g.has_edge(3, 3)

    def test_default_weight_applied(self, snap_file):
        g = read_snap_signed_edgelist(snap_file, default_weight=0.5)
        assert g.weight(0, 1) == 0.5

    def test_gzip_round_trip(self, tmp_path):
        path = tmp_path / "sample.txt.gz"
        with gzip.open(path, "wt") as handle:
            handle.write(SNAP_SAMPLE)
        g = read_snap_signed_edgelist(path)
        assert g.number_of_edges() == 3

    def test_malformed_row_rejected(self):
        with pytest.raises(GraphFormatError) as err:
            list(iter_snap_edges(iter(["0 1"])))
        assert "line 1" in str(err.value)

    def test_non_integer_rejected(self):
        with pytest.raises(GraphFormatError):
            list(iter_snap_edges(iter(["a b 1"])))

    def test_bad_sign_rejected(self):
        with pytest.raises(GraphFormatError):
            list(iter_snap_edges(iter(["0 1 2"])))

    def test_write_read_round_trip(self, tmp_path):
        g = SignedDiGraph(name="rt")
        g.add_edge(10, 20, -1, 1.0)
        g.add_edge(20, 30, 1, 1.0)
        path = tmp_path / "out.txt"
        write_snap_signed_edgelist(g, path)
        loaded = read_snap_signed_edgelist(path)
        assert {(u, v, int(d.sign)) for u, v, d in loaded.iter_edges()} == {
            (10, 20, -1),
            (20, 30, 1),
        }


class TestJsonRoundTrip:
    def build(self) -> SignedDiGraph:
        g = SignedDiGraph(name="json-rt")
        g.add_edge("a", "b", 1, 0.25)
        g.add_edge("b", "c", -1, 0.75)
        g.set_state("a", NodeState.POSITIVE)
        g.set_state("c", NodeState.UNKNOWN)
        return g

    def test_dict_round_trip(self):
        g = self.build()
        clone = graph_from_dict(graph_to_dict(g))
        assert clone.name == "json-rt"
        assert clone.weight("a", "b") == 0.25
        assert clone.sign("b", "c") is Sign.NEGATIVE
        assert clone.state("a") is NodeState.POSITIVE
        assert clone.state("c") is NodeState.UNKNOWN

    def test_file_round_trip(self, tmp_path):
        g = self.build()
        path = tmp_path / "g.json"
        save_graph_json(g, path)
        clone = load_graph_json(path)
        assert clone.number_of_edges() == 2
        assert clone.state("a") is NodeState.POSITIVE

    def test_gzip_file_round_trip(self, tmp_path):
        g = self.build()
        path = tmp_path / "g.json.gz"
        save_graph_json(g, path)
        assert load_graph_json(path).number_of_edges() == 2

    def test_rejects_wrong_format(self):
        with pytest.raises(GraphFormatError):
            graph_from_dict({"format": "something-else"})

    def test_rejects_malformed_payload(self):
        with pytest.raises(GraphFormatError):
            graph_from_dict(
                {"format": "repro-signed-digraph", "version": 1, "nodes": [{}], "edges": []}
            )

    def test_rejects_invalid_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(GraphFormatError):
            load_graph_json(path)
