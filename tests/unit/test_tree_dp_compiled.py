"""Unit tests for the compiled flat-array TreeDP kernel."""

import pytest

from repro.core.binarize import binarize_cascade_tree
from repro.core.tree_dp import KIsomitBTSolver
from repro.errors import DynamicProgramError
from repro.graphs.generators.trees import random_general_tree
from repro.graphs.signed_digraph import SignedDiGraph
from repro.kernel import (
    CompiledBinaryTree,
    TreeDPKernel,
    compile_binary_tree,
    solve_curve_compiled,
    solve_k_isomit_bt_compiled,
)
from repro.types import NodeState
from repro.utils.rng import spawn_rng


def _stated_tree(n, seed=0, max_children=3):
    tree = random_general_tree(n, max_children=max_children, rng=seed)
    rng = spawn_rng(seed, "states")
    for node in tree.nodes():
        tree.set_state(
            node, NodeState.POSITIVE if rng.random() < 0.6 else NodeState.NEGATIVE
        )
    return tree


def _binary(n, seed=0, **kwargs):
    return binarize_cascade_tree(_stated_tree(n, seed, **kwargs), alpha=3.0)


class TestCompiledBinaryTree:
    def test_postorder_children_before_parents(self):
        ct = compile_binary_tree(_binary(12))
        assert ct.root_pos == ct.size - 1
        for pos in range(ct.size):
            for child in (ct.left[pos], ct.right[pos]):
                if child >= 0:
                    assert child < pos
                    assert ct.parent[child] == pos
                    assert ct.depth[child] == ct.depth[pos] + 1

    def test_structure_mirrors_binary_tree(self):
        binary = _binary(10, seed=3)
        ct = compile_binary_tree(binary)
        assert ct.size == binary.size()
        assert ct.num_real == binary.num_real
        assert sum(ct.is_dummy) == binary.size() - binary.num_real
        for pos, uid in enumerate(ct.uids):
            node = binary.node(uid)
            assert ct.g_in[pos] == node.g_in
            assert ct.originals[pos] == node.original
            assert bool(ct.is_dummy[pos]) == node.is_dummy

    def test_real_size_counts_non_dummies(self):
        ct = compile_binary_tree(_binary(11, seed=5, max_children=5))
        assert ct.real_size[ct.root_pos] == ct.num_real
        for pos in range(ct.size):
            expected = 0 if ct.is_dummy[pos] else 1
            for child in (ct.left[pos], ct.right[pos]):
                if child >= 0:
                    expected += ct.real_size[child]
            assert ct.real_size[pos] == expected

    def test_gpath_rows_match_reference_path_product(self):
        binary = _binary(12, seed=7, max_children=4)
        ct = compile_binary_tree(binary)
        solver = KIsomitBTSolver(binary, use_kernel=False)
        for pos, uid in enumerate(ct.uids):
            row = ct.gpath[pos]
            assert len(row) == ct.depth[pos] + 1
            assert row[ct.depth[pos]] == 1.0  # self product
            # Walk the ancestor chain: slot a == ancestor at depth a.
            anc = ct.parent[pos]
            while anc >= 0:
                expected = solver.path_product(ct.uids[anc], uid)
                assert row[ct.depth[anc]] == expected  # bitwise
                anc = ct.parent[anc]


class TestTreeDPKernel:
    def test_accepts_binary_or_precompiled(self):
        binary = _binary(8)
        compiled = compile_binary_tree(binary)
        a = TreeDPKernel(binary).solve(2)
        b = TreeDPKernel(compiled).solve(2)
        assert (a.score, a.initiators) == (b.score, b.initiators)

    def test_k_out_of_range(self):
        kernel = TreeDPKernel(_binary(5))
        with pytest.raises(DynamicProgramError, match=r"k must be in \[0, 5\]"):
            kernel.solve(-1)
        with pytest.raises(DynamicProgramError, match=r"k must be in \[0, 5\]"):
            kernel.solve(6)
        with pytest.raises(DynamicProgramError, match=r"k must be in \[0, 5\]"):
            kernel.solve_curve(6)

    def test_k_zero_is_empty(self):
        result = TreeDPKernel(_binary(6)).solve(0)
        assert result.k == 0
        assert result.score == 0.0
        assert result.initiators == {}

    def test_cap_growth_resweep_is_identical(self):
        binary = _binary(12, seed=11)
        incremental = TreeDPKernel(binary)
        fresh = TreeDPKernel(binary)
        fresh._ensure(binary.num_real)
        # Incremental solves trigger geometric cap growth; each re-sweep
        # must reproduce the lower budgets bit-for-bit.
        for k in range(0, binary.num_real + 1):
            a = incremental.solve(k)
            b = fresh.solve(k)
            assert a.score == b.score
            assert a.initiators == b.initiators

    def test_memo_states_gauge(self):
        kernel = TreeDPKernel(_binary(9))
        assert kernel.memo_states == 0
        kernel.solve(1)
        after_one = kernel.memo_states
        assert after_one > 0
        kernel.solve(kernel.tree.num_real)
        assert kernel.memo_states > after_one

    def test_module_level_wrappers(self):
        binary = _binary(7, seed=2)
        ref = KIsomitBTSolver(binary, use_kernel=False)
        one = solve_k_isomit_bt_compiled(binary, 2)
        assert one.score == ref.solve(2).score
        curve = solve_curve_compiled(binary, 3)
        assert [r.k for r in curve] == [1, 2, 3]
        assert all(r.score == ref.solve(r.k).score for r in curve)


class TestSolverKernelWiring:
    def test_kernel_is_default(self):
        solver = KIsomitBTSolver(_binary(6))
        assert solver.use_kernel is True
        solver.solve(1)
        assert isinstance(solver._kernel, TreeDPKernel)

    def test_escape_hatch_uses_recursive_memo(self):
        solver = KIsomitBTSolver(_binary(6), use_kernel=False)
        solver.solve(1)
        assert solver._kernel is None
        assert len(solver._memo) > 0
        assert solver.memo_size() == len(solver._memo)

    def test_memo_size_lazy_kernel(self):
        solver = KIsomitBTSolver(_binary(6))
        assert solver.memo_size() == 0  # nothing solved, kernel not built
        solver.solve(2)
        assert solver.memo_size() > 0

    def test_solver_curve_matches_kernel_curve(self):
        binary = _binary(9, seed=4)
        via_solver = KIsomitBTSolver(binary).solve_curve(4)
        via_kernel = TreeDPKernel(binary).solve_curve(4)
        assert [(r.k, r.score, r.initiators) for r in via_solver] == [
            (r.k, r.score, r.initiators) for r in via_kernel
        ]

    def test_recursive_curve_fallback(self):
        binary = _binary(7, seed=9)
        curve = KIsomitBTSolver(binary, use_kernel=False).solve_curve(3)
        reference = KIsomitBTSolver(binary, use_kernel=False)
        assert [(r.k, r.score) for r in curve] == [
            (k, reference.solve(k).score) for k in (1, 2, 3)
        ]

    def test_path_product_iterative_matches_and_caches(self):
        binary = _binary(10, seed=6)
        solver = KIsomitBTSolver(binary)
        # Deepest slot: exercise a multi-hop upward walk.
        deepest = max(
            range(binary.size()),
            key=lambda uid: len(_chain(binary, uid)),
        )
        chain = _chain(binary, deepest)
        if chain:
            top = chain[-1]
            value = solver.path_product(top, deepest)
            assert (top, deepest) in solver._gprod
            # Cached prefix reuse must return the same value.
            assert solver.path_product(top, deepest) == value

    def test_path_product_rejects_non_ancestor(self):
        tree = SignedDiGraph()
        tree.add_node(0, NodeState.POSITIVE)
        tree.add_node(1, NodeState.POSITIVE)
        tree.add_node(2, NodeState.POSITIVE)
        tree.add_edge(0, 1, 1, 0.5)
        tree.add_edge(0, 2, 1, 0.5)
        binary = binarize_cascade_tree(tree, alpha=3.0)
        solver = KIsomitBTSolver(binary)
        leaves = [n.uid for n in binary.nodes if n.left is None and n.right is None]
        with pytest.raises(DynamicProgramError, match="is not an ancestor"):
            solver.path_product(leaves[0], leaves[1])


def _chain(binary, uid):
    out = []
    node = binary.node(uid)
    while node.parent is not None:
        out.append(node.parent)
        node = binary.node(node.parent)
    return out
