"""Unit tests for DiffusionResult conveniences and EdgeData."""

from repro.diffusion.base import ActivationEvent, DiffusionResult
from repro.graphs.signed_digraph import EdgeData, SignedDiGraph
from repro.types import NodeState, Sign


def build_result() -> DiffusionResult:
    return DiffusionResult(
        seeds={"s": NodeState.POSITIVE},
        final_states={
            "s": NodeState.POSITIVE,
            "a": NodeState.NEGATIVE,
            "b": NodeState.POSITIVE,
        },
        events=[
            ActivationEvent(round=0, source=None, target="s", state=NodeState.POSITIVE),
            ActivationEvent(round=1, source="s", target="a", state=NodeState.NEGATIVE),
            ActivationEvent(round=2, source="a", target="b", state=NodeState.NEGATIVE),
            ActivationEvent(
                round=3, source="s", target="b", state=NodeState.POSITIVE, was_flip=True
            ),
        ],
        rounds=3,
    )


def build_graph() -> SignedDiGraph:
    g = SignedDiGraph()
    g.add_edge("s", "a", -1, 0.5)
    g.add_edge("a", "b", 1, 0.4)
    g.add_edge("s", "b", 1, 0.6)
    g.add_node("untouched")
    return g


class TestDiffusionResult:
    def test_infected_nodes_and_count(self):
        result = build_result()
        assert sorted(result.infected_nodes()) == ["a", "b", "s"]
        assert result.num_infected() == 3

    def test_activation_links_take_last_event(self):
        result = build_result()
        links = result.activation_links()
        assert links["a"] == "s"
        assert links["b"] == "s"  # the flip supersedes a's activation

    def test_cascade_forest_uses_final_links(self):
        result = build_result()
        forest = result.cascade_forest(build_graph())
        assert forest.has_edge("s", "b")
        assert not forest.has_edge("a", "b")
        assert forest.state("b") is NodeState.POSITIVE

    def test_apply_states_writes_in_place(self):
        result = build_result()
        graph = build_graph()
        returned = result.apply_states(graph)
        assert returned is graph
        assert graph.state("a") is NodeState.NEGATIVE
        assert graph.state("untouched") is NodeState.INACTIVE

    def test_apply_states_skips_missing_nodes(self):
        result = build_result()
        graph = SignedDiGraph()
        graph.add_node("s")
        result.apply_states(graph)  # a, b absent: no error
        assert graph.state("s") is NodeState.POSITIVE

    def test_infected_network_excludes_untouched(self):
        result = build_result()
        infected = result.infected_network(build_graph())
        assert not infected.has_node("untouched")
        assert infected.number_of_nodes() == 3


class TestEdgeData:
    def test_copy_is_independent(self):
        original = EdgeData(Sign.POSITIVE, 0.5)
        clone = original.copy()
        clone.weight = 0.9
        assert original.weight == 0.5
        assert clone.sign is Sign.POSITIVE
