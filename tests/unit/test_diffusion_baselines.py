"""Unit tests for the IC, LT, SIR, Voter and P-IC baseline models."""

import pytest

from repro.diffusion.ic import ICModel
from repro.diffusion.lt import LTModel
from repro.diffusion.pic import PICModel
from repro.diffusion.sir import SIRModel
from repro.diffusion.voter import SignedVoterModel
from repro.errors import InvalidModelParameterError
from repro.graphs.signed_digraph import SignedDiGraph
from repro.types import NodeState


def certain_line(sign: int = 1) -> SignedDiGraph:
    g = SignedDiGraph()
    g.add_edge("u", "v", sign, 1.0)
    return g


def flip_gadget() -> SignedDiGraph:
    """F reaches G in round 2 via a negative link; H in round 3 via positive."""
    g = SignedDiGraph()
    g.add_edge("s", "f", 1, 1.0)
    g.add_edge("s", "h0", 1, 1.0)
    g.add_edge("h0", "h", 1, 1.0)
    g.add_edge("f", "g", -1, 1.0)
    g.add_edge("h", "g", 1, 1.0)
    return g


class TestICModel:
    def test_certain_edge_activates(self):
        result = ICModel().run(certain_line(), {"u": NodeState.POSITIVE}, rng=1)
        assert result.final_states["v"] is NodeState.POSITIVE

    def test_sign_propagation_through_negative_link(self):
        result = ICModel().run(certain_line(-1), {"u": NodeState.POSITIVE}, rng=1)
        assert result.final_states["v"] is NodeState.NEGATIVE

    def test_unsigned_mode_copies_state(self):
        result = ICModel(propagate_signs=False).run(
            certain_line(-1), {"u": NodeState.POSITIVE}, rng=1
        )
        assert result.final_states["v"] is NodeState.POSITIVE

    def test_never_reactivates(self):
        result = ICModel().run(flip_gadget(), {"s": NodeState.POSITIVE}, rng=2)
        assert result.final_states["g"] is NodeState.NEGATIVE  # f wins, h can't flip
        assert not any(e.was_flip for e in result.events)

    def test_single_attempt_per_pair(self):
        g = SignedDiGraph()
        g.add_edge("u", "v", 1, 0.0)
        result = ICModel().run(g, {"u": NodeState.POSITIVE}, rng=3)
        assert not any(e.target == "v" for e in result.events)

    def test_no_boosting(self):
        g = SignedDiGraph()
        g.add_edge("u", "v", 1, 0.4)
        hits = sum(
            1
            for seed in range(400)
            if ICModel()
            .run(g, {"u": NodeState.POSITIVE}, rng=seed)
            .final_states.get("v", NodeState.INACTIVE)
            .is_active
        )
        assert 0.3 < hits / 400 < 0.5  # raw 0.4, not boosted


class TestLTModel:
    def test_threshold_reached_by_strong_neighbors(self):
        g = SignedDiGraph()
        g.add_edge("a", "t", 1, 1.0)
        result = LTModel().run(g, {"a": NodeState.POSITIVE}, rng=1)
        # Normalised influence is 1.0 >= any threshold in [0, 1).
        assert result.final_states["t"] is NodeState.POSITIVE

    def test_signed_majority_sets_state(self):
        g = SignedDiGraph()
        g.add_edge("a", "t", -1, 1.0)
        result = LTModel().run(g, {"a": NodeState.POSITIVE}, rng=1)
        assert result.final_states["t"] is NodeState.NEGATIVE

    def test_quiesces(self):
        g = SignedDiGraph()
        for i in range(6):
            g.add_edge(i, i + 1, 1, 1.0)
        result = LTModel().run(g, {0: NodeState.POSITIVE}, rng=4)
        assert result.rounds <= 7


class TestSIRModel:
    def test_parameter_validation(self):
        with pytest.raises(InvalidModelParameterError):
            SIRModel(infection_scale=-1)
        with pytest.raises(ValueError):
            SIRModel(recovery_probability=1.5)
        with pytest.raises(InvalidModelParameterError):
            SIRModel(max_rounds=0)

    def test_certain_transmission(self):
        result = SIRModel(recovery_probability=0.0, max_rounds=10).run(
            certain_line(), {"u": NodeState.POSITIVE}, rng=1
        )
        assert result.final_states["v"] is NodeState.POSITIVE

    def test_recovered_nodes_stop_transmitting(self):
        g = SignedDiGraph()
        g.add_edge("u", "v", 1, 0.2)  # low per-round probability
        result = SIRModel(recovery_probability=1.0).run(
            g, {"u": NodeState.POSITIVE}, rng=1
        )
        # u recovers after round 1; the single attempt round happened once.
        attempts = [e for e in result.events if e.target == "v"]
        assert len(attempts) <= 1

    def test_terminates_without_recovery(self):
        result = SIRModel(recovery_probability=0.0, max_rounds=50).run(
            certain_line(), {"u": NodeState.POSITIVE}, rng=1
        )
        assert result.rounds <= 50


class TestSignedVoterModel:
    def test_parameter_validation(self):
        with pytest.raises(InvalidModelParameterError):
            SignedVoterModel(rounds=-1)
        with pytest.raises(InvalidModelParameterError):
            SignedVoterModel(update_probability=2.0)

    def test_copies_trusted_neighbor_opinion(self):
        result = SignedVoterModel(rounds=1).run(
            certain_line(), {"u": NodeState.POSITIVE}, rng=1
        )
        assert result.final_states["v"] is NodeState.POSITIVE

    def test_negates_across_negative_link(self):
        result = SignedVoterModel(rounds=1).run(
            certain_line(-1), {"u": NodeState.POSITIVE}, rng=1
        )
        assert result.final_states["v"] is NodeState.NEGATIVE

    def test_zero_rounds_only_seeds(self):
        result = SignedVoterModel(rounds=0).run(
            certain_line(), {"u": NodeState.POSITIVE}, rng=1
        )
        assert "v" not in result.final_states

    def test_opinions_can_flip_back_and_forth(self):
        # Voter dynamics allow re-updating, unlike cascades.
        g = SignedDiGraph()
        g.add_edge("u", "v", -1, 1.0)
        g.add_edge("w", "v", 1, 1.0)
        result = SignedVoterModel(rounds=8).run(
            g, {"u": NodeState.POSITIVE, "w": NodeState.POSITIVE}, rng=3
        )
        assert result.final_states["v"].is_active


class TestPICModel:
    def test_polarity_propagation(self):
        result = PICModel().run(certain_line(-1), {"u": NodeState.POSITIVE}, rng=1)
        assert result.final_states["v"] is NodeState.NEGATIVE

    def test_no_boost(self):
        g = SignedDiGraph()
        g.add_edge("u", "v", 1, 0.4)
        hits = sum(
            1
            for seed in range(400)
            if PICModel()
            .run(g, {"u": NodeState.POSITIVE}, rng=seed)
            .final_states.get("v", NodeState.INACTIVE)
            .is_active
        )
        assert 0.3 < hits / 400 < 0.5

    def test_no_flips(self):
        result = PICModel().run(flip_gadget(), {"s": NodeState.POSITIVE}, rng=2)
        assert result.final_states["g"] is NodeState.NEGATIVE
        assert not any(e.was_flip for e in result.events)
