"""Unit tests for graph statistics (Table II substrate)."""

import pytest

from repro.graphs.signed_digraph import SignedDiGraph
from repro.graphs.stats import (
    degree_sequence,
    in_degree_distribution,
    out_degree_distribution,
    positive_fraction,
    reciprocity,
    summarize,
    triangle_balance_counts,
)


def mixed_graph() -> SignedDiGraph:
    g = SignedDiGraph(name="mixed")
    g.add_edge("a", "b", 1, 0.5)
    g.add_edge("b", "a", 1, 0.5)
    g.add_edge("b", "c", -1, 0.5)
    g.add_edge("c", "a", 1, 0.5)
    return g


class TestPositiveFraction:
    def test_mixed(self):
        assert positive_fraction(mixed_graph()) == pytest.approx(3 / 4)

    def test_empty_graph(self):
        assert positive_fraction(SignedDiGraph()) == 0.0


class TestReciprocity:
    def test_mixed(self):
        # (a,b) and (b,a) are mutual: 2 of 4 edges.
        assert reciprocity(mixed_graph()) == pytest.approx(0.5)

    def test_empty(self):
        assert reciprocity(SignedDiGraph()) == 0.0


class TestDegreeDistributions:
    def test_in_degree_histogram(self):
        hist = in_degree_distribution(mixed_graph())
        assert hist == {2: 1, 1: 2}  # a has in-degree 2; b, c have 1

    def test_out_degree_histogram(self):
        hist = out_degree_distribution(mixed_graph())
        assert hist == {1: 2, 2: 1}

    def test_degree_sequence_sorted(self):
        seq = degree_sequence(mixed_graph())
        assert seq == sorted(seq, reverse=True)
        assert sum(seq) == 2 * mixed_graph().number_of_edges()


class TestTriangleBalance:
    def test_balanced_triangle(self):
        g = SignedDiGraph()
        g.add_edge("a", "b", 1, 0.5)
        g.add_edge("b", "c", 1, 0.5)
        g.add_edge("a", "c", 1, 0.5)
        balanced, unbalanced = triangle_balance_counts(g)
        assert (balanced, unbalanced) == (1, 0)

    def test_unbalanced_triangle(self):
        g = SignedDiGraph()
        g.add_edge("a", "b", 1, 0.5)
        g.add_edge("b", "c", 1, 0.5)
        g.add_edge("a", "c", -1, 0.5)
        balanced, unbalanced = triangle_balance_counts(g)
        assert (balanced, unbalanced) == (0, 1)

    def test_two_negative_is_balanced(self):
        g = SignedDiGraph()
        g.add_edge("a", "b", -1, 0.5)
        g.add_edge("b", "c", -1, 0.5)
        g.add_edge("a", "c", 1, 0.5)
        balanced, unbalanced = triangle_balance_counts(g)
        assert (balanced, unbalanced) == (1, 0)

    def test_no_triangles(self):
        g = SignedDiGraph()
        g.add_edge("a", "b", 1, 0.5)
        assert triangle_balance_counts(g) == (0, 0)


class TestSummarize:
    def test_fields(self):
        summary = summarize(mixed_graph())
        assert summary.name == "mixed"
        assert summary.num_nodes == 3
        assert summary.num_edges == 4
        assert summary.max_in_degree == 2
        assert summary.mean_degree == pytest.approx(8 / 3)
        assert summary.link_type == "directed"

    def test_as_row_matches_table2_columns(self):
        row = summarize(mixed_graph()).as_row()
        assert row == ("mixed", 3, 4, "directed")

    def test_empty_graph(self):
        summary = summarize(SignedDiGraph(), name="empty")
        assert summary.num_nodes == 0
        assert summary.mean_degree == 0.0
