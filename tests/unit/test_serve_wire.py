"""Unit tests for the ``repro.serve/v1`` wire layer (no sockets)."""

import json

import pytest

from repro.core.rid import RIDConfig
from repro.errors import (
    ConfigError,
    DeltaApplicationError,
    EmptyInfectionError,
    RequestTimeoutError,
    ServeClientError,
    ServerOverloadedError,
    SessionExistsError,
    SessionNotFoundError,
    WireFormatError,
)
from repro.graphs.signed_digraph import SignedDiGraph
from repro.serve import wire
from repro.types import NodeState


class TestParseBody:
    def test_valid_body_round_trips(self):
        raw = json.dumps({"schema": wire.WIRE_SCHEMA, "x": 1}).encode()
        assert wire.parse_body(raw)["x"] == 1

    @pytest.mark.parametrize(
        "raw",
        [
            b"not json",
            b"[1, 2]",
            b'{"x": 1}',  # missing schema tag
            b'{"schema": "repro.serve/v0"}',
            b'{"schema": null}',
        ],
    )
    def test_bad_bodies_raise_wire_format_error(self, raw):
        with pytest.raises(WireFormatError):
            wire.parse_body(raw)

    def test_wrong_schema_message_names_both_versions(self):
        raw = json.dumps({"schema": "repro.serve/v999"}).encode()
        with pytest.raises(WireFormatError, match="v999.*repro.serve/v1"):
            wire.parse_body(raw)


class TestFieldHelpers:
    def test_require_present(self):
        assert wire.require({"a": {"b": 1}}, "a", dict) == {"b": 1}

    def test_require_missing_or_wrong_type(self):
        with pytest.raises(WireFormatError, match="'graph' must be a dict"):
            wire.require({}, "graph", dict)
        with pytest.raises(WireFormatError):
            wire.require({"graph": 3}, "graph", dict)

    def test_optional_int_accepts_none_and_int(self):
        assert wire.optional_int({}, "budget") is None
        assert wire.optional_int({"budget": None}, "budget") is None
        assert wire.optional_int({"budget": 4}, "budget") == 4

    @pytest.mark.parametrize("value", [True, 1.5, "3", [1]])
    def test_optional_int_rejects_non_ints(self, value):
        with pytest.raises(WireFormatError, match="'budget' must be an integer"):
            wire.optional_int({"budget": value}, "budget")


class TestGraphCodec:
    def test_graph_round_trips_via_wire(self):
        from repro.pipeline.cache import encode_graph

        g = SignedDiGraph()
        g.add_edge("a", "b", 1, 0.5)
        g.set_states({"a": NodeState.POSITIVE, "b": NodeState.NEGATIVE})
        decoded = wire.graph_from_json(encode_graph(g))
        assert set(decoded.nodes()) == {"a", "b"}
        assert decoded.state("b") is NodeState.NEGATIVE

    @pytest.mark.parametrize("payload", [None, 7, [], {"nodes": "x"}, {}])
    def test_malformed_graph_payloads(self, payload):
        with pytest.raises(WireFormatError):
            wire.graph_from_json(payload)


class TestConfigCodec:
    def test_none_means_paper_defaults(self):
        assert wire.config_from_json(None) == RIDConfig()

    def test_round_trip(self):
        config = RIDConfig(alpha=4.0, beta=0.09, k_strategy="exhaustive")
        assert wire.config_from_json(wire.config_to_json(config)) == config

    def test_unknown_keys_rejected_loudly(self):
        with pytest.raises(ConfigError, match=r"\['betaa'\].*valid fields"):
            wire.config_from_json({"betaa": 0.1})

    def test_values_are_validated(self):
        with pytest.raises(ConfigError, match="alpha must be >= 1"):
            wire.config_from_json({"alpha": 0.5})

    def test_non_dict_payload(self):
        with pytest.raises(WireFormatError):
            wire.config_from_json("beta=0.1")


class TestPayloadDigest:
    def test_key_order_does_not_matter(self):
        assert wire.payload_digest({"a": 1, "b": 2}) == wire.payload_digest(
            {"b": 2, "a": 1}
        )

    def test_different_content_differs(self):
        assert wire.payload_digest({"a": 1}) != wire.payload_digest({"a": 2})


class TestErrorEnvelope:
    @pytest.mark.parametrize(
        "exc, status",
        [
            (ConfigError("bad"), 400),
            (WireFormatError("bad"), 400),
            (EmptyInfectionError("empty"), 422),
            (DeltaApplicationError("out of order"), 409),
            (SessionExistsError("s"), 409),
            (SessionNotFoundError("s"), 404),
            (ServerOverloadedError(), 503),
            (RequestTimeoutError("slow"), 504),
            (RuntimeError("boom"), 500),
        ],
    )
    def test_status_mapping(self, exc, status):
        got, body, _ = wire.error_envelope(exc)
        assert got == status
        assert body["schema"] == wire.WIRE_SCHEMA
        assert body["error"]["status"] == status
        assert body["error"]["type"] == type(exc).__name__

    def test_overload_carries_retry_after_header(self):
        _, _, headers = wire.error_envelope(
            ServerOverloadedError("busy", retry_after=2.5)
        )
        assert headers["Retry-After"] == "2.5"

    def test_key_error_message_is_not_repr_quoted(self):
        _, body, _ = wire.error_envelope(SessionNotFoundError("sess"))
        assert body["error"]["message"] == "unknown stream session 'sess'"
        assert body["error"]["session"] == "sess"

    def test_envelope_is_json_serialisable(self):
        _, body, _ = wire.error_envelope(ConfigError("x"))
        json.dumps(body)


class TestRaiseFromEnvelope:
    def round_trip(self, exc, retry_after=None):
        status, body, headers = wire.error_envelope(exc)
        with pytest.raises(type(exc)) as info:
            wire.raise_from_envelope(
                status, body, retry_after or headers.get("Retry-After")
            )
        return info.value

    def test_config_error_round_trips(self):
        err = self.round_trip(ConfigError("alpha must be >= 1, got 0.5"))
        assert "alpha must be >= 1" in str(err)

    def test_session_errors_round_trip_with_clean_message(self):
        err = self.round_trip(SessionNotFoundError("sess"))
        assert err.session == "sess"
        err = self.round_trip(SessionExistsError("sess"))
        assert err.session == "sess"

    def test_overload_round_trips_retry_after(self):
        err = self.round_trip(ServerOverloadedError("busy", retry_after=3.0))
        assert err.retry_after == 3.0

    def test_unknown_type_becomes_client_error(self):
        body = wire.envelope(
            {"error": {"type": "SomethingElse", "message": "weird", "status": 500}}
        )
        with pytest.raises(ServeClientError) as info:
            wire.raise_from_envelope(500, body)
        assert info.value.status == 500
        assert info.value.envelope == body

    def test_missing_envelope_becomes_client_error(self):
        with pytest.raises(ServeClientError, match="no error envelope"):
            wire.raise_from_envelope(502, {"schema": wire.WIRE_SCHEMA})


class TestReason:
    def test_known_and_unknown_statuses(self):
        assert wire.reason(200) == "OK"
        assert wire.reason(503) == "Service Unavailable"
        assert wire.reason(599) == "Error"
