"""Unit tests for the certainty-cover detector."""

import pytest

from repro.extensions.certainty_cover import (
    CertaintyCoverDetector,
    consistent_certainty_closure,
)
from repro.graphs.signed_digraph import SignedDiGraph
from repro.types import NodeState


def certain_chain() -> SignedDiGraph:
    """r(+) -> a(+) -> b(-): all links certain at alpha=3."""
    g = SignedDiGraph()
    g.add_edge("r", "a", 1, 0.5)   # boosted to 1
    g.add_edge("a", "b", -1, 1.0)  # weight-1 negative link
    g.set_states(
        {
            "r": NodeState.POSITIVE,
            "a": NodeState.POSITIVE,
            "b": NodeState.NEGATIVE,
        }
    )
    return g


class TestClosure:
    def test_full_chain_covered(self):
        g = certain_chain()
        assert consistent_certainty_closure(g, "r", alpha=3.0) == {"r", "a", "b"}

    def test_weak_link_blocks(self):
        g = certain_chain()
        g.set_weight("r", "a", 0.2)  # boosted 0.6 < 1
        assert consistent_certainty_closure(g, "r", alpha=3.0) == {"r"}

    def test_inconsistent_link_blocks(self):
        g = certain_chain()
        g.set_state("a", NodeState.NEGATIVE)  # r(+) -+-> a(-): inconsistent
        assert consistent_certainty_closure(g, "r", alpha=3.0) == {"r"}

    def test_negative_link_needs_full_weight(self):
        g = certain_chain()
        g.set_weight("a", "b", 0.9)  # negative links are not boosted
        assert consistent_certainty_closure(g, "r", alpha=3.0) == {"r", "a"}


class TestDetector:
    def test_single_root_explains_chain(self):
        result = CertaintyCoverDetector(alpha=3.0).detect(certain_chain())
        assert result.initiators == {"r"}
        assert result.states["r"] is NodeState.POSITIVE

    def test_residual_nodes_become_initiators(self):
        g = certain_chain()
        g.add_node("island", NodeState.NEGATIVE)
        result = CertaintyCoverDetector(alpha=3.0).detect(g)
        assert result.initiators == {"r", "island"}
        assert result.states["island"] is NodeState.NEGATIVE

    def test_weak_link_splits_cover(self):
        g = certain_chain()
        g.set_weight("a", "b", 0.5)
        result = CertaintyCoverDetector(alpha=3.0).detect(g)
        assert result.initiators == {"r", "b"}

    def test_max_initiators_caps_cover(self):
        g = certain_chain()
        g.set_weight("a", "b", 0.5)
        result = CertaintyCoverDetector(alpha=3.0, budget=1).detect(g)
        assert len(result.initiators) == 1

    def test_greedy_prefers_bigger_closure(self):
        g = SignedDiGraph()
        g.add_edge("big", "x1", 1, 1.0)
        g.add_edge("big", "x2", 1, 1.0)
        g.add_edge("small", "y1", 1, 1.0)
        for node in g.nodes():
            g.set_state(node, NodeState.POSITIVE)
        result = CertaintyCoverDetector(alpha=1.0, budget=1).detect(g)
        assert result.initiators == {"big"}

    def test_unknown_state_nodes_do_not_conduct_certainty(self):
        # The detector targets fully observed snapshots: a '?' node's
        # outgoing influence cannot be certified (its state is needed
        # for the consistency check), so it conducts nothing and ends
        # up self-covered. (The Lemma 3.1 gadget solver in
        # repro.complexity deliberately uses the weaker state-free
        # closure instead.)
        g = certain_chain()
        g.set_state("a", NodeState.UNKNOWN)
        result = CertaintyCoverDetector(alpha=3.0).detect(g)
        assert result.initiators == {"r", "a", "b"}
