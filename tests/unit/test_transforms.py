"""Unit tests for graph transforms (Definition 2 and friends)."""

import pytest

from repro.graphs.signed_digraph import SignedDiGraph
from repro.graphs.transforms import (
    infected_subgraph,
    negative_subgraph,
    positive_subgraph,
    strip_states,
    to_diffusion_network,
)
from repro.types import NodeState, Sign


class TestToDiffusionNetwork:
    def test_reverses_every_edge(self, triangle):
        diffusion = to_diffusion_network(triangle)
        assert diffusion.has_edge("b", "a")
        assert diffusion.has_edge("c", "b")
        assert diffusion.has_edge("a", "c")
        assert diffusion.number_of_edges() == 3

    def test_signs_and_weights_carry_over(self, triangle):
        # Definition 2: s_D(v, u) = s(u, v), w_D(v, u) = w(u, v).
        diffusion = to_diffusion_network(triangle)
        assert diffusion.sign("b", "a") is triangle.sign("a", "b")
        assert diffusion.weight("b", "a") == triangle.weight("a", "b")
        assert diffusion.sign("c", "b") is Sign.NEGATIVE

    def test_node_set_preserved(self, triangle):
        diffusion = to_diffusion_network(triangle)
        assert sorted(diffusion.nodes()) == sorted(triangle.nodes())

    def test_original_untouched(self, triangle):
        to_diffusion_network(triangle)
        assert triangle.has_edge("a", "b")


class TestSignSubgraphs:
    def test_positive_subgraph_keeps_all_nodes(self, triangle):
        sub = positive_subgraph(triangle)
        assert sub.number_of_nodes() == 3
        assert sub.number_of_edges() == 2
        assert not sub.has_edge("b", "c")

    def test_negative_subgraph(self, triangle):
        sub = negative_subgraph(triangle)
        assert sub.number_of_edges() == 1
        assert sub.has_edge("b", "c")

    def test_sign_subgraphs_partition_edges(self, triangle):
        pos = positive_subgraph(triangle).number_of_edges()
        neg = negative_subgraph(triangle).number_of_edges()
        assert pos + neg == triangle.number_of_edges()

    def test_states_preserved(self, triangle):
        triangle.set_state("a", NodeState.POSITIVE)
        assert positive_subgraph(triangle).state("a") is NodeState.POSITIVE


class TestInfectedSubgraph:
    def test_keeps_only_active_nodes(self, triangle):
        triangle.set_states({"a": NodeState.POSITIVE, "b": NodeState.NEGATIVE})
        infected = infected_subgraph(triangle)
        assert sorted(infected.nodes()) == ["a", "b"]
        assert infected.has_edge("a", "b")
        assert infected.number_of_edges() == 1

    def test_empty_when_nothing_active(self, triangle):
        assert infected_subgraph(triangle).number_of_nodes() == 0

    def test_unknown_state_not_included(self, triangle):
        triangle.set_state("a", NodeState.UNKNOWN)
        assert infected_subgraph(triangle).number_of_nodes() == 0


class TestStripStates:
    def test_resets_all_states_on_copy(self, triangle):
        triangle.set_state("a", NodeState.POSITIVE)
        stripped = strip_states(triangle)
        assert stripped.state("a") is NodeState.INACTIVE
        assert triangle.state("a") is NodeState.POSITIVE
