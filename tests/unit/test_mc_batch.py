"""Unit tests for the batched Monte-Carlo tier.

Pins the contracts of ``simulate_batch`` and the ``estimate_spread``
fast path: bit-identity to ``simulate_many`` on the python backend, the
fallback summariser for non-batchable configurations, the legacy
aggregation semantics of ``estimate_spread``, summary-helper edge cases,
``mc.batch.*`` metrics, and the numpy-absent degradation (this module
is part of the pure-python tier-1 surface — the CI no-numpy leg runs
it).
"""

import sys
import warnings

import pytest

import repro.kernel.backends as backends
from repro.diffusion import (
    ICModel,
    MFCModel,
    SIRModel,
    estimate_spread,
    simulate_batch,
    simulate_many,
)
from repro.errors import ConfigError
from repro.graphs.generators.random_graphs import signed_erdos_renyi
from repro.kernel import compile_graph, run_mfc_batch
from repro.kernel.batch import CascadeBatchSummary
from repro.kernel.cascade import check_seeds_compiled
from repro.obs import MetricsRecorder, using_recorder
from repro.runtime.config import RuntimeConfig
from repro.types import NodeState
from repro.utils.rng import derive_seed


@pytest.fixture(autouse=True)
def _clean_dispatch_state(monkeypatch):
    """Isolate each test from cached probes, instances and env overrides."""
    monkeypatch.delenv(backends.ENV_VAR, raising=False)
    backends._reset_for_tests()
    yield
    backends._reset_for_tests()


def _without_numpy(monkeypatch):
    """Make ``import numpy`` raise ImportError inside this test."""
    for name in [m for m in sys.modules if m == "numpy" or m.startswith("numpy.")]:
        monkeypatch.delitem(sys.modules, name)
    # A None entry makes the import system raise ImportError immediately.
    monkeypatch.setitem(sys.modules, "numpy", None)


def _graph(rng=3):
    return signed_erdos_renyi(
        60, 0.08, positive_probability=0.7, weight_range=(0.2, 0.8), rng=rng
    )


def _seeds(graph, count=3):
    nodes = sorted(graph.nodes(), key=repr)[:count]
    return {
        node: NodeState.POSITIVE if i % 2 == 0 else NodeState.NEGATIVE
        for i, node in enumerate(nodes)
    }


class TestPythonBitIdentity:
    """The python batch tier must replay ``simulate_many`` to the bit."""

    def test_mfc_matches_simulate_many(self):
        graph = _graph()
        seeds = _seeds(graph)
        model = MFCModel(alpha=2.5)
        results = simulate_many(model, graph, seeds, 10, base_seed=7)
        summary = simulate_batch(
            model, graph, seeds, 10, base_seed=7, record_states=True
        )
        assert summary.trials == 10
        for trial, result in enumerate(results):
            assert summary.final_states(trial) == result.final_states
            assert summary.rounds[trial] == result.rounds
            assert summary.flips[trial] == sum(
                1 for event in result.events if event.was_flip
            )
            positive = sum(
                1
                for state in result.final_states.values()
                if state is NodeState.POSITIVE
            )
            assert summary.positive[trial] == positive
            assert summary.infected[trial] == len(result.final_states)

    def test_ic_matches_simulate_many(self):
        graph = _graph(rng=5)
        seeds = _seeds(graph)
        model = ICModel()
        results = simulate_many(model, graph, seeds, 8, base_seed=3)
        summary = simulate_batch(
            model, graph, seeds, 8, base_seed=3, record_states=True
        )
        assert summary.flips == [0] * 8
        for trial, result in enumerate(results):
            assert summary.final_states(trial) == result.final_states
            assert summary.rounds[trial] == result.rounds

    def test_parallel_chunks_match_serial(self):
        graph = _graph()
        seeds = _seeds(graph)
        model = MFCModel(alpha=2.0)
        serial = simulate_batch(
            model, graph, seeds, 16, base_seed=9, record_states=True
        )
        chunked = simulate_batch(
            model,
            graph,
            seeds,
            16,
            base_seed=9,
            runtime=RuntimeConfig(workers=2),
            record_states=True,
        )
        assert chunked.trials == serial.trials == 16
        assert chunked.infected == serial.infected
        assert chunked.flips == serial.flips
        assert chunked.rounds == serial.rounds
        assert chunked.attempts == serial.attempts
        for trial in range(16):
            assert chunked.final_states(trial) == serial.final_states(trial)


class TestFallbackPath:
    """Non-batchable configurations take ``simulate_many`` + summarise."""

    def test_non_kernel_model_summarised(self):
        graph = _graph()
        seeds = _seeds(graph)
        model = SIRModel()
        results = simulate_many(model, graph, seeds, 5, base_seed=1)
        summary = simulate_batch(
            model, graph, seeds, 5, base_seed=1, record_states=True
        )
        for trial, result in enumerate(results):
            active = {
                node: state
                for node, state in result.final_states.items()
                if state.is_active
            }
            assert summary.final_states(trial) == active
            assert summary.flips[trial] == sum(
                1 for event in result.events if event.was_flip
            )

    def test_use_kernel_false_summarised(self):
        graph = _graph()
        seeds = _seeds(graph)
        reference = simulate_batch(
            MFCModel(alpha=2.0), graph, seeds, 6, base_seed=4, record_states=True
        )
        fallback = simulate_batch(
            MFCModel(alpha=2.0, use_kernel=False),
            graph,
            seeds,
            6,
            base_seed=4,
            record_states=True,
        )
        # The reference simulator and the kernel are bit-identical, so
        # both routes must report the same counts and states.
        assert fallback.infected == reference.infected
        assert fallback.flips == reference.flips
        assert fallback.rounds == reference.rounds
        for trial in range(6):
            assert fallback.final_states(trial) == reference.final_states(trial)

    def test_cache_dir_falls_back(self, tmp_path):
        graph = _graph()
        seeds = _seeds(graph)
        model = MFCModel(alpha=2.0)
        recorder = MetricsRecorder()
        cached = simulate_batch(
            model,
            graph,
            seeds,
            4,
            base_seed=2,
            runtime=RuntimeConfig(cache_dir=tmp_path),
            recorder=recorder,
        )
        counters = recorder.metrics.counters
        assert counters.get("mc.batch.fallback.cache") == 1
        direct = simulate_batch(model, graph, seeds, 4, base_seed=2)
        assert cached.infected == direct.infected
        assert cached.rounds == direct.rounds


class TestEstimateSpread:
    """The fast path must reproduce the legacy aggregation exactly."""

    def test_fast_path_equals_legacy_walk(self):
        graph = _graph()
        seeds = _seeds(graph)
        fast = estimate_spread(MFCModel(alpha=2.2), graph, seeds, trials=10, base_seed=7)
        legacy = estimate_spread(
            MFCModel(alpha=2.2, use_kernel=False), graph, seeds, trials=10, base_seed=7
        )
        # Dataclass equality pins every field to the float: sizes,
        # non-empty-cascade state fractions, flips, rounds.
        assert fast == legacy

    def test_ic_fast_path_equals_legacy_walk(self):
        graph = _graph(rng=9)
        seeds = _seeds(graph)
        fast = estimate_spread(ICModel(), graph, seeds, trials=12, base_seed=5)
        legacy = estimate_spread(
            ICModel(use_kernel=False), graph, seeds, trials=12, base_seed=5
        )
        assert fast == legacy

    def test_cache_dir_keeps_legacy_path(self, tmp_path):
        graph = _graph()
        seeds = _seeds(graph)
        model = MFCModel(alpha=2.0)
        runtime = RuntimeConfig(cache_dir=tmp_path)
        cached = estimate_spread(
            model, graph, seeds, trials=6, base_seed=3, runtime=runtime
        )
        plain = estimate_spread(model, graph, seeds, trials=6, base_seed=3)
        assert cached == plain

    def test_empty_cascade_fractions_stay_zero(self):
        graph = signed_erdos_renyi(20, 0.1, weight_range=(0.0, 0.0), rng=13)
        node = sorted(graph.nodes(), key=repr)[0]
        estimate = estimate_spread(
            MFCModel(alpha=2.0), graph, {node: NodeState.POSITIVE}, trials=5
        )
        # Seeds always stay active, so every cascade has exactly one
        # positive node: fractions are 1/0 and spread is 1.
        assert estimate.mean_infected == 1.0
        assert estimate.mean_positive_fraction == 1.0
        assert estimate.mean_negative_fraction == 0.0
        assert estimate.mean_flips == 0.0


class TestSummaryHelpers:
    def _summary(self, record_states=True):
        graph = _graph()
        seeds = _seeds(graph)
        return simulate_batch(
            MFCModel(alpha=2.0),
            graph,
            seeds,
            4,
            base_seed=1,
            record_states=record_states,
        ), seeds

    def test_state_views_require_record_states(self):
        summary, seeds = self._summary(record_states=False)
        assert summary.states is None
        with pytest.raises(ValueError, match="record_states=True"):
            summary.active_counts()
        with pytest.raises(ValueError, match="record_states=True"):
            summary.final_states(0)

    def test_active_counts_cover_seeds(self):
        summary, seeds = self._summary()
        counts = summary.active_counts()
        for node in seeds:
            assert counts[node] == summary.trials  # seeds never deactivate

    def test_match_counts_against_final_states(self):
        summary, seeds = self._summary()
        observed = summary.final_states(0)
        matches = summary.match_counts(observed)
        totals = summary.match_totals(observed)
        assert totals[0] == len(observed)  # trial 0 matches itself exactly
        assert sum(matches.values()) == sum(totals)

    def test_concat_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            CascadeBatchSummary.concat([])


class TestMetrics:
    def test_fastpath_counters(self):
        graph = _graph()
        seeds = _seeds(graph)
        recorder = MetricsRecorder()
        simulate_batch(
            MFCModel(alpha=2.0), graph, seeds, 4, base_seed=1, recorder=recorder
        )
        counters = recorder.metrics.counters
        assert counters.get("mc.batch.trials") == 4
        assert counters.get("mc.batch.fastpath") == 1
        assert counters.get("kernel.mfc.batch.calls") == 1
        assert counters.get("kernel.mfc.batch.cascades") == 4
        assert counters.get("kernel.mfc.batch.backend.python") == 1

    def test_fallback_counters(self):
        graph = _graph()
        seeds = _seeds(graph)
        recorder = MetricsRecorder()
        simulate_batch(SIRModel(), graph, seeds, 3, base_seed=1, recorder=recorder)
        counters = recorder.metrics.counters
        assert counters.get("mc.batch.fallback") == 1
        assert counters.get("mc.batch.fallback.model") == 1
        assert "mc.batch.fastpath" not in counters


class TestNoNumpy:
    """The batch tier must degrade exactly like the single-cascade tier."""

    def test_numpy_request_falls_back_once(self, monkeypatch):
        _without_numpy(monkeypatch)
        graph = _graph()
        seeds = _seeds(graph)
        model = MFCModel(alpha=2.0, backend="numpy")
        with pytest.warns(RuntimeWarning, match="falling back"):
            degraded = simulate_batch(
                model, graph, seeds, 6, base_seed=2, record_states=True
            )
        reference = simulate_batch(
            MFCModel(alpha=2.0, backend="python"),
            graph,
            seeds,
            6,
            base_seed=2,
            record_states=True,
        )
        assert degraded.infected == reference.infected
        assert degraded.flips == reference.flips
        for trial in range(6):
            assert degraded.final_states(trial) == reference.final_states(trial)
        # Second request: same fallback, but silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            simulate_batch(model, graph, seeds, 2, base_seed=2)

    def test_fallback_counter_recorded(self, monkeypatch):
        _without_numpy(monkeypatch)
        graph = _graph()
        seeds = _seeds(graph)
        recorder = MetricsRecorder()
        with using_recorder(recorder):
            with pytest.warns(RuntimeWarning):
                simulate_batch(
                    MFCModel(alpha=2.0, backend="numpy"), graph, seeds, 2, base_seed=1
                )
        assert recorder.metrics.counters.get("kernel.backend.fallback") == 1

    def test_bad_backend_name_rejected(self):
        graph = _graph()
        compiled = compile_graph(graph)
        seeds = _seeds(graph)
        validated = check_seeds_compiled(compiled, seeds)
        trial_seeds = [derive_seed(0, "mfc", trial) for trial in range(2)]
        with pytest.raises(ConfigError, match="fortran"):
            run_mfc_batch(
                compiled,
                validated,
                trial_seeds,
                alpha=2.0,
                allow_flips=True,
                max_rounds=10**9,
                backend="fortran",
            )

    def test_batch_api_runs_on_python_backend(self, monkeypatch):
        _without_numpy(monkeypatch)
        graph = _graph()
        compiled = compile_graph(graph)
        seeds = _seeds(graph)
        validated = check_seeds_compiled(compiled, seeds)
        trial_seeds = [derive_seed(0, "mfc", trial) for trial in range(3)]
        summary = run_mfc_batch(
            compiled,
            validated,
            trial_seeds,
            alpha=2.0,
            allow_flips=True,
            max_rounds=10**9,
            record_states=True,
        )
        assert summary.trials == 3
        assert all(count >= len(seeds) for count in summary.infected)
