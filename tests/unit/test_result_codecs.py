"""Round-trip tests for the stable result codecs.

``DetectionResult.to_json``/``from_json`` and
``DiffusionResult.to_json``/``from_json`` are the single encoding shared
by the CLI artefact writers and the ``repro.serve/v1`` wire schema, so
these tests pin (a) lossless round-trips, (b) deterministic encoding
(same result → same JSON), and (c) loud failures on malformed payloads.
"""

import json

import pytest

from repro.core.baselines import DetectionResult
from repro.diffusion.base import DiffusionResult
from repro.diffusion.mfc import MFCModel
from repro.errors import ResultFormatError
from repro.graphs.generators.random_graphs import signed_erdos_renyi
from repro.graphs.signed_digraph import SignedDiGraph
from repro.types import NodeState


@pytest.fixture(scope="module")
def network():
    return signed_erdos_renyi(
        40, 0.1, positive_probability=0.8, weight_range=(0.2, 0.7), rng=3
    )


@pytest.fixture(scope="module")
def cascade(network):
    return MFCModel(alpha=3.0).run(
        network, {0: NodeState.POSITIVE, 3: NodeState.NEGATIVE}, rng=5
    )


def graphs_equal(a: SignedDiGraph, b: SignedDiGraph) -> bool:
    if set(a.nodes()) != set(b.nodes()):
        return False
    if any(a.state(n) != b.state(n) for n in a.nodes()):
        return False
    edges_a = {(u, v): (int(d.sign), d.weight) for u, v, d in a.iter_edges()}
    edges_b = {(u, v): (int(d.sign), d.weight) for u, v, d in b.iter_edges()}
    return edges_a == edges_b


class TestDetectionResultCodec:
    def detection_result(self, network, cascade) -> DetectionResult:
        import repro

        return repro.detect(network, cascade)

    def test_round_trip_is_lossless(self, network, cascade):
        result = self.detection_result(network, cascade)
        decoded = DetectionResult.from_json(result.to_json())
        assert decoded.method == result.method
        assert decoded.initiators == result.initiators
        assert decoded.states == result.states
        assert decoded.objective == result.objective
        assert len(decoded.trees) == len(result.trees)
        for mine, theirs in zip(decoded.trees, result.trees):
            assert graphs_equal(mine, theirs)

    def test_encoding_is_deterministic(self, network, cascade):
        result = self.detection_result(network, cascade)
        blob_a = json.dumps(result.to_json(), sort_keys=True)
        blob_b = json.dumps(result.to_json(), sort_keys=True)
        assert blob_a == blob_b

    def test_payload_is_plain_json(self, network, cascade):
        payload = self.detection_result(network, cascade).to_json()
        assert payload["format"] == DetectionResult.JSON_FORMAT
        json.loads(json.dumps(payload))  # no repr()-only values anywhere

    def test_mixed_node_types_round_trip(self):
        tree = SignedDiGraph(name="t")
        tree.add_edge("a", 2, 1, 0.5)
        tree.set_states({"a": NodeState.POSITIVE, 2: NodeState.POSITIVE})
        result = DetectionResult(
            method="rid(beta=0.1)",
            initiators={"a", 2},
            states={"a": NodeState.POSITIVE, 2: NodeState.NEGATIVE},
            trees=[tree],
            objective=-1.25,
        )
        decoded = DetectionResult.from_json(result.to_json())
        assert decoded.initiators == {"a", 2}
        assert decoded.states == result.states
        assert graphs_equal(decoded.trees[0], tree)
        assert decoded.objective == -1.25

    def test_none_objective_survives(self):
        result = DetectionResult(method="rid-tree", initiators={1})
        assert DetectionResult.from_json(result.to_json()).objective is None

    @pytest.mark.parametrize(
        "payload",
        [
            "not a dict",
            {},
            {"format": "something/else"},
            {"format": DetectionResult.JSON_FORMAT},  # fields missing
            {
                "format": DetectionResult.JSON_FORMAT,
                "method": "rid",
                "initiators": [["i", 1]],
                "states": [[["i", 1], 9]],  # 9 is not a NodeState
                "trees": [],
                "objective": None,
            },
        ],
    )
    def test_malformed_payloads_raise(self, payload):
        with pytest.raises(ResultFormatError):
            DetectionResult.from_json(payload)


class TestDiffusionResultCodec:
    def test_round_trip_is_lossless(self, cascade):
        decoded = DiffusionResult.from_json(cascade.to_json())
        assert decoded.seeds == cascade.seeds
        assert decoded.final_states == cascade.final_states
        assert decoded.events == cascade.events
        assert decoded.rounds == cascade.rounds

    def test_payload_is_plain_json(self, cascade):
        payload = cascade.to_json()
        assert payload["format"] == DiffusionResult.JSON_FORMAT
        json.loads(json.dumps(payload))

    @pytest.mark.parametrize(
        "payload",
        ["nope", {}, {"format": "repro.detection-result/v1"}, {"format": None}],
    )
    def test_malformed_payloads_raise(self, payload):
        with pytest.raises(ResultFormatError):
            DiffusionResult.from_json(payload)

    def test_missing_fields_raise(self):
        with pytest.raises(ResultFormatError, match="malformed"):
            DiffusionResult.from_json({"format": DiffusionResult.JSON_FORMAT})
