"""Unit tests for seed planting and Monte-Carlo helpers."""

import pytest

from repro.diffusion.base import DiffusionModel, DiffusionResult
from repro.diffusion.mfc import MFCModel
from repro.diffusion.monte_carlo import estimate_spread, simulate_many
from repro.diffusion.seeds import plant_fixed_initiators, plant_random_initiators
from repro.errors import InvalidSeedError
from repro.graphs.generators.trees import path_graph
from repro.graphs.signed_digraph import SignedDiGraph
from repro.types import NodeState


def ring(n: int = 20) -> SignedDiGraph:
    g = SignedDiGraph()
    for i in range(n):
        g.add_edge(i, (i + 1) % n, 1, 0.5)
    return g


class TestPlantRandomInitiators:
    def test_count_respected(self):
        seeds = plant_random_initiators(ring(), 5, rng=1)
        assert len(seeds) == 5

    def test_theta_split_exact(self):
        seeds = plant_random_initiators(ring(), 10, positive_ratio=0.3, rng=1)
        positives = sum(1 for s in seeds.values() if s is NodeState.POSITIVE)
        assert positives == 3

    def test_theta_one_all_positive(self):
        seeds = plant_random_initiators(ring(), 4, positive_ratio=1.0, rng=1)
        assert all(s is NodeState.POSITIVE for s in seeds.values())

    def test_deterministic(self):
        a = plant_random_initiators(ring(), 6, rng=42)
        b = plant_random_initiators(ring(), 6, rng=42)
        assert a == b

    def test_count_exceeding_network_rejected(self):
        with pytest.raises(InvalidSeedError):
            plant_random_initiators(ring(5), 6, rng=1)

    def test_zero_count_rejected(self):
        with pytest.raises(InvalidSeedError):
            plant_random_initiators(ring(), 0, rng=1)


class TestPlantFixedInitiators:
    def test_default_states_positive(self):
        seeds = plant_fixed_initiators(ring(), [1, 2])
        assert seeds == {1: NodeState.POSITIVE, 2: NodeState.POSITIVE}

    def test_explicit_states(self):
        seeds = plant_fixed_initiators(
            ring(), [1, 2], [NodeState.NEGATIVE, NodeState.POSITIVE]
        )
        assert seeds[1] is NodeState.NEGATIVE

    def test_length_mismatch_rejected(self):
        with pytest.raises(InvalidSeedError):
            plant_fixed_initiators(ring(), [1, 2], [NodeState.POSITIVE])

    def test_unknown_node_rejected(self):
        with pytest.raises(InvalidSeedError):
            plant_fixed_initiators(ring(), ["nope"])


class TestMonteCarlo:
    def test_simulate_many_count_and_determinism(self):
        model = MFCModel(alpha=2.0)
        seeds = {0: NodeState.POSITIVE}
        runs_a = simulate_many(model, ring(), seeds, trials=5, base_seed=3)
        runs_b = simulate_many(model, ring(), seeds, trials=5, base_seed=3)
        assert len(runs_a) == 5
        assert [r.num_infected() for r in runs_a] == [r.num_infected() for r in runs_b]

    def test_trials_differ_from_each_other(self):
        # alpha = 1 keeps attempts at probability 0.5 (no saturation), so
        # cascade sizes genuinely vary across trials.
        model = MFCModel(alpha=1.0)
        runs = simulate_many(model, ring(), {0: NodeState.POSITIVE}, trials=10, base_seed=3)
        sizes = {r.num_infected() for r in runs}
        assert len(sizes) > 1  # randomness across trials

    def test_estimate_spread_fields(self):
        estimate = estimate_spread(
            MFCModel(alpha=2.0), ring(), {0: NodeState.POSITIVE}, trials=8, base_seed=1
        )
        assert estimate.trials == 8
        assert estimate.mean_infected >= 1.0
        assert 0.0 <= estimate.mean_positive_fraction <= 1.0
        assert 0.0 <= estimate.mean_negative_fraction <= 1.0
        assert estimate.mean_positive_fraction + estimate.mean_negative_fraction == (
            pytest.approx(1.0)
        )
        assert estimate.std_infected >= 0.0

    def test_certain_path_spread(self):
        path = path_graph(5, sign=1, weight=1.0)
        estimate = estimate_spread(
            MFCModel(alpha=3.0), path, {0: NodeState.POSITIVE}, trials=3
        )
        assert estimate.mean_infected == 5.0
        assert estimate.mean_positive_fraction == 1.0
        assert estimate.mean_negative_fraction == 0.0


class BurnoutModel(DiffusionModel):
    """Stub: every node ends in ``empty_state`` on trials whose index is
    in ``empty_trials``, as recovery-style models can; other trials end
    all-positive."""

    name = "burnout"

    def __init__(self, empty_trials):
        self.empty_trials = set(empty_trials)
        self.calls = 0

    def run(self, diffusion, seeds, rng=None):
        trial = self.calls
        self.calls += 1
        if trial in self.empty_trials:
            state = NodeState.INACTIVE  # empty cascade: nobody active
        else:
            state = NodeState.POSITIVE
        return DiffusionResult(
            seeds=dict(seeds),
            final_states={n: state for n in diffusion.nodes()},
        )


class TestEmptyCascadeConvention:
    def test_empty_trials_excluded_from_positive_fraction(self):
        """Regression: empty cascades used to push 0.0 into the positive
        fractions, biasing the mean downward. Here half the trials are
        empty and every non-empty trial is all-positive, so the mean
        positive fraction must be exactly 1.0 (previously 0.5)."""
        estimate = estimate_spread(
            BurnoutModel(empty_trials=[1, 3]), ring(), {0: NodeState.POSITIVE}, trials=4
        )
        assert estimate.mean_positive_fraction == 1.0
        assert estimate.mean_negative_fraction == 0.0
        assert estimate.trials == 4  # empty trials still counted here

    def test_all_empty_trials_give_zero_fraction(self):
        model = BurnoutModel(empty_trials=range(3))
        estimate = estimate_spread(model, ring(), {0: NodeState.POSITIVE}, trials=3)
        assert estimate.mean_positive_fraction == 0.0
        assert estimate.mean_negative_fraction == 0.0
        assert estimate.mean_infected == 0.0
