"""Unit tests for influence maximization under signed models."""

import pytest

from repro.diffusion.mfc import MFCModel
from repro.errors import InvalidSeedError
from repro.graphs.generators.trees import star_graph
from repro.graphs.signed_digraph import SignedDiGraph
from repro.influence.maximization import (
    greedy_influence_maximization,
    margin_objective,
    spread_objective,
)
from repro.diffusion.base import DiffusionResult
from repro.types import NodeState


def two_stars() -> SignedDiGraph:
    """Hubs h1 (5 leaves) and h2 (2 leaves), certain positive links."""
    g = SignedDiGraph()
    for i in range(5):
        g.add_edge("h1", f"x{i}", 1, 1.0)
    for i in range(2):
        g.add_edge("h2", f"y{i}", 1, 1.0)
    return g


class TestObjectives:
    def test_spread_counts_infected(self):
        result = DiffusionResult(
            seeds={}, final_states={1: NodeState.POSITIVE, 2: NodeState.NEGATIVE}
        )
        assert spread_objective(result) == 2.0

    def test_margin_is_signed_difference(self):
        result = DiffusionResult(
            seeds={},
            final_states={
                1: NodeState.POSITIVE,
                2: NodeState.NEGATIVE,
                3: NodeState.NEGATIVE,
            },
        )
        assert margin_objective(result) == -1.0


class TestGreedyMaximization:
    def test_budget_zero(self):
        result = greedy_influence_maximization(
            two_stars(), MFCModel(alpha=1.0), budget=0, trials=2
        )
        assert result.seeds == []

    def test_budget_exceeding_pool_rejected(self):
        g = SignedDiGraph()
        g.add_node("only")
        with pytest.raises(InvalidSeedError):
            greedy_influence_maximization(g, MFCModel(), budget=2, trials=1)

    def test_picks_bigger_hub_first(self):
        result = greedy_influence_maximization(
            two_stars(), MFCModel(alpha=1.0), budget=1, trials=3
        )
        assert result.seeds == ["h1"]

    def test_second_pick_is_other_hub(self):
        result = greedy_influence_maximization(
            two_stars(), MFCModel(alpha=1.0), budget=2, trials=3
        )
        assert result.seeds == ["h1", "h2"]
        # Objective grows monotonically along the greedy path.
        assert result.objective_values[1] >= result.objective_values[0]

    def test_candidate_shortlist_respected(self):
        result = greedy_influence_maximization(
            two_stars(),
            MFCModel(alpha=1.0),
            budget=1,
            trials=3,
            candidates=["h2", "y0"],
        )
        assert result.seeds == ["h2"]

    def test_margin_objective_avoids_negative_hub(self):
        g = SignedDiGraph()
        for i in range(4):
            g.add_edge("good", f"g{i}", 1, 1.0)   # spreads agreement
        for i in range(6):
            g.add_edge("bad", f"b{i}", -1, 1.0)   # spreads disagreement
        by_spread = greedy_influence_maximization(
            g, MFCModel(alpha=1.0), budget=1, trials=3, objective=spread_objective
        )
        by_margin = greedy_influence_maximization(
            g, MFCModel(alpha=1.0), budget=1, trials=3, objective=margin_objective
        )
        assert by_spread.seeds == ["bad"]   # 7 infected beats 5
        assert by_margin.seeds == ["good"]  # +5 margin beats 1 - 6 = -5

    def test_deterministic(self):
        a = greedy_influence_maximization(
            two_stars(), MFCModel(alpha=1.0), budget=2, trials=3, base_seed=5
        )
        b = greedy_influence_maximization(
            two_stars(), MFCModel(alpha=1.0), budget=2, trials=3, base_seed=5
        )
        assert a.seeds == b.seeds
        assert a.objective_values == b.objective_values

    def test_lazy_evaluation_saves_work(self):
        # CELF must not re-evaluate every candidate every round: with
        # n candidates and budget 2, evaluations < 2n.
        g = two_stars()
        result = greedy_influence_maximization(
            g, MFCModel(alpha=1.0), budget=2, trials=2
        )
        assert result.evaluations < 2 * g.number_of_nodes()
