"""Unit tests for RID's known-k (budgeted) detection mode."""

import pytest

from repro.core.rid import RID, RIDConfig
from repro.errors import ConfigError
from repro.graphs.signed_digraph import SignedDiGraph
from repro.types import NodeState


def two_tree_snapshot() -> SignedDiGraph:
    """Two separate cascade trees with an embedded weak link in tree A.

    Tree A: r1(+) -> a(+) [strong], a -> w(+) [very weak].
    Tree B: r2(-) -> b(-) [strong].
    """
    g = SignedDiGraph()
    g.add_edge("r1", "a", 1, 0.9)
    g.add_edge("a", "w", 1, 0.01)
    g.add_edge("r2", "b", 1, 0.9)
    g.set_states(
        {
            "r1": NodeState.POSITIVE,
            "a": NodeState.POSITIVE,
            "w": NodeState.POSITIVE,
            "r2": NodeState.NEGATIVE,
            "b": NodeState.NEGATIVE,
        }
    )
    return g


class TestBudgetValidation:
    def test_budget_below_tree_count_rejected(self):
        with pytest.raises(ConfigError):
            RID().detect_with_budget(two_tree_snapshot(), budget=1)

    def test_budget_above_node_count_rejected(self):
        with pytest.raises(ConfigError):
            RID().detect_with_budget(two_tree_snapshot(), budget=6)


class TestBudgetedDetection:
    def test_minimum_budget_returns_roots(self):
        result = RID().detect_with_budget(two_tree_snapshot(), budget=2)
        assert result.initiators == {"r1", "r2"}
        assert result.method == "rid(k=2)"

    def test_extra_budget_goes_to_weakest_link(self):
        result = RID().detect_with_budget(two_tree_snapshot(), budget=3)
        # The third initiator lands on w, the nearly unexplained node.
        assert result.initiators == {"r1", "r2", "w"}
        assert result.states["w"] is NodeState.POSITIVE

    def test_exact_count_respected(self):
        for budget in (2, 3, 4, 5):
            result = RID().detect_with_budget(two_tree_snapshot(), budget=budget)
            assert len(result.initiators) == budget

    def test_objective_monotone_in_budget(self):
        snapshots = two_tree_snapshot()
        objectives = [
            RID().detect_with_budget(snapshots, budget=b).objective
            for b in (2, 3, 4, 5)
        ]
        assert all(b >= a - 1e-12 for a, b in zip(objectives, objectives[1:]))

    def test_full_budget_selects_everyone(self):
        result = RID().detect_with_budget(two_tree_snapshot(), budget=5)
        assert result.initiators == {"r1", "a", "w", "r2", "b"}
        assert result.objective == pytest.approx(5.0)

    def test_knapsack_prefers_productive_tree(self):
        # With budget 3 the knapsack must give tree A the extra initiator
        # (gain ~0.97 at w) rather than tree B (gain ~0.0 at b).
        detector = RID()
        detector.detect_with_budget(two_tree_snapshot(), budget=3)
        budgets = {s.k for s in detector.last_selections}
        assert budgets == {1, 2}

    def test_states_cover_detections(self):
        result = RID().detect_with_budget(two_tree_snapshot(), budget=3)
        assert set(result.states) == result.initiators

    def test_max_k_per_tree_respected(self):
        detector = RID(RIDConfig(max_k_per_tree=1))
        result = detector.detect_with_budget(two_tree_snapshot(), budget=2)
        assert len(result.initiators) == 2
        with pytest.raises(ConfigError):
            detector.detect_with_budget(two_tree_snapshot(), budget=3)


class TestEmptySnapshot:
    """A snapshot with zero infected nodes is well-formed for budget=0.

    Regression: the pre-refactor implementation crashed with
    EmptyInfectionError before validating the budget at all.
    """

    def test_budget_zero_returns_empty_result(self):
        detector = RID()
        result = detector.detect_with_budget(SignedDiGraph(), budget=0)
        assert result.initiators == set()
        assert result.states == {}
        assert result.trees == []
        assert result.objective == 0.0
        assert result.method == "rid(k=0)"
        assert detector.last_selections == []

    def test_nonzero_budget_rejected_with_range_message(self):
        with pytest.raises(ConfigError, match=r"budget must be in \[0, 0\]"):
            RID().detect_with_budget(SignedDiGraph(), budget=1)

    def test_removed_k_spelling_raises_config_error(self):
        with pytest.raises(ConfigError, match="pass budget=0"):
            RID().detect_with_budget(SignedDiGraph(), k=0)


class TestDiagnosticsConsistency:
    def test_tree_size_matches_beta_mode(self):
        """Both entry points must report the same per-tree sizes."""
        snapshot = two_tree_snapshot()
        beta_detector = RID()
        beta_detector.detect(snapshot)
        beta_sizes = sorted(s.tree_size for s in beta_detector.last_selections)
        budget_detector = RID()
        budget_detector.detect_with_budget(snapshot, budget=2)
        budget_sizes = sorted(s.tree_size for s in budget_detector.last_selections)
        assert budget_sizes == beta_sizes

    def test_tree_size_is_num_real_not_node_count(self, monkeypatch):
        """Regression: budgeted mode used ``tree.number_of_nodes()``
        while β mode used ``binary.num_real`` — incomparable if the
        binarisation's real-node bookkeeping ever diverges from the raw
        node count. Pin both entry points to ``binary.num_real``.
        """
        import repro.core.rid as rid_module

        real_binarize = rid_module.binarize_cascade_tree

        def shrunk_binarize(tree, alpha, inconsistent_value=0.0):
            binary = real_binarize(
                tree, alpha=alpha, inconsistent_value=inconsistent_value
            )
            binary.num_real = max(1, binary.num_real - 1)
            return binary

        monkeypatch.setattr(rid_module, "binarize_cascade_tree", shrunk_binarize)
        snapshot = two_tree_snapshot()
        # Trees have 3 (r1, a, w) and 2 (r2, b) nodes; shrunk num_real
        # gives 2 and 1.
        beta_detector = RID()
        beta_detector.detect(snapshot)
        assert sorted(s.tree_size for s in beta_detector.last_selections) == [1, 2]

        budget_detector = RID()
        budget_detector.detect_with_budget(snapshot, budget=2)
        assert sorted(s.tree_size for s in budget_detector.last_selections) == [1, 2]
