"""Unit tests for the :mod:`repro.detectors` package.

Covers the registry (canonical names, config coercion, content
digests), the zoo-wide empty-infection and runtime contracts, the two
estimator additions (suspect-prior MAP, community multi-source), the
centrality edge cases, and the deprecation shims left at the old
module paths.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.detectors import (
    DetectionResult,
    Detector,
    detector_names,
    resolve_detector,
)
from repro.detectors.base import check_runtime
from repro.detectors.centrality import (
    CentralityConfig,
    DistanceCenterDetector,
    JordanCenterDetector,
    RumorCentralityDetector,
    select_with_budget,
)
from repro.detectors.map_suspect import MapSuspectConfig, MapSuspectDetector
from repro.detectors.multi_source import MultiSourceConfig, MultiSourceDetector
from repro.detectors.registry import (
    DETECTOR_REGISTRY,
    TIER_ROUTING,
    canonical_detector_name,
    coerce_detector_config,
    detector_config_to_json,
    detector_digest,
    detector_spec,
)
from repro.errors import ConfigError, EmptyInfectionError
from repro.graphs.generators.trees import path_graph, star_graph
from repro.graphs.signed_digraph import SignedDiGraph
from repro.obs.metrics import MetricsRecorder
from repro.runtime.config import RuntimeConfig
from repro.types import NodeState

ALL_NAMES = sorted(DETECTOR_REGISTRY)


def infected_path(n: int, prefix: str = "") -> SignedDiGraph:
    g = SignedDiGraph()
    for i in range(n - 1):
        g.add_edge(f"{prefix}{i}", f"{prefix}{i + 1}", 1, 0.5)
    if n == 1:
        g.add_node(f"{prefix}0")
    for node in g.nodes():
        g.set_state(node, NodeState.POSITIVE)
    return g


def two_component_snapshot() -> SignedDiGraph:
    merged = SignedDiGraph()
    for prefix in ("a", "b"):
        part = infected_path(3, prefix)
        for u, v, d in part.iter_edges():
            merged.add_edge(u, v, int(d.sign), d.weight)
    for node in merged.nodes():
        merged.set_state(node, NodeState.POSITIVE)
    return merged


class TestRegistry:
    def test_every_expected_name_is_registered(self):
        assert detector_names() == ALL_NAMES
        for name in (
            "rid",
            "rid_positive",
            "rid_tree",
            "rumor_centrality",
            "jordan_center",
            "distance_center",
            "map_suspect",
            "multi_source",
        ):
            assert name in DETECTOR_REGISTRY

    @pytest.mark.parametrize(
        "spelling", ["jordan_center", "jordan-center", " Jordan-Center "]
    )
    def test_canonical_name_normalises(self, spelling):
        assert canonical_detector_name(spelling) == "jordan_center"

    def test_unknown_name_lists_the_registry(self):
        with pytest.raises(ConfigError, match="registered detectors"):
            canonical_detector_name("page_rank")

    def test_non_string_name(self):
        with pytest.raises(ConfigError, match="must be a string"):
            canonical_detector_name(7)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_every_entry_resolves_with_defaults(self, name):
        detector = resolve_detector(name)
        assert isinstance(detector, Detector)
        spec = detector_spec(name)
        assert spec.tier in ("fast", "accurate")

    def test_instance_passes_through(self):
        built = JordanCenterDetector()
        assert resolve_detector(built) is built

    def test_instance_with_config_conflicts(self):
        with pytest.raises(ConfigError, match="pre-built"):
            resolve_detector(JordanCenterDetector(), CentralityConfig())

    def test_tier_routing_names_are_registered(self):
        assert set(TIER_ROUTING) == {"fast", "accurate"}
        for name in TIER_ROUTING.values():
            assert name in DETECTOR_REGISTRY

    def test_resolution_counter(self):
        from repro.obs.recorder import using_recorder

        rec = MetricsRecorder()
        with using_recorder(rec):
            resolve_detector("distance_center")
        assert rec.metrics.counters["detector.resolved.distance_center"] == 1


class TestConfigCoercion:
    def test_none_means_defaults(self):
        config = coerce_detector_config("map_suspect")
        assert isinstance(config, MapSuspectConfig)
        assert config.trials == MapSuspectConfig().trials

    def test_dict_is_field_checked(self):
        config = coerce_detector_config("map_suspect", {"trials": 4})
        assert config.trials == 4

    def test_unknown_dict_keys_raise(self):
        with pytest.raises(ConfigError, match=r"\['iterations'\]"):
            coerce_detector_config("map_suspect", {"iterations": 4})

    def test_wrong_dataclass_type_raises(self):
        with pytest.raises(ConfigError, match="MultiSourceConfig"):
            coerce_detector_config("multi_source", MapSuspectConfig())

    def test_coerced_config_is_validated(self):
        with pytest.raises(ConfigError, match="trials must be >= 1"):
            coerce_detector_config("map_suspect", {"trials": 0})

    def test_config_to_json_round_trip(self):
        payload = detector_config_to_json(MapSuspectConfig(trials=3))
        assert payload["trials"] == 3
        assert detector_config_to_json(None) is None


class TestDetectorDigest:
    def test_digest_is_stable(self):
        assert detector_digest("rid") == detector_digest("rid")
        assert detector_digest("map_suspect", {"trials": 8}) == detector_digest(
            "map_suspect", MapSuspectConfig()
        )

    def test_digest_separates_configs(self):
        assert detector_digest("map_suspect", {"trials": 4}) != detector_digest(
            "map_suspect", {"trials": 5}
        )

    def test_digest_separates_detectors(self):
        # Same (empty) config dataclass, different registry entries.
        assert detector_digest("jordan_center") != detector_digest(
            "distance_center"
        )


class TestEmptyInfectionContract:
    """Satellite: the whole zoo fails empty input the way RID does."""

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_detect_raises_empty_infection(self, name):
        detector = resolve_detector(name)
        with pytest.raises(EmptyInfectionError):
            detector.detect(SignedDiGraph())

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_budget_zero_on_empty_returns_empty_result(self, name):
        detector = resolve_detector(name)
        result = detector.detect_with_budget(SignedDiGraph(), budget=0)
        assert result.initiators == set()
        assert result.method.endswith("(k=0)")

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_nonzero_budget_on_empty_raises(self, name):
        detector = resolve_detector(name)
        with pytest.raises(ConfigError, match=r"budget must be in \[0, 0\]"):
            detector.detect_with_budget(SignedDiGraph(), budget=2)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_legacy_budget_spellings_raise(self, name):
        detector = resolve_detector(name)
        with pytest.raises(ConfigError, match="pass budget=3 instead"):
            detector.detect_with_budget(infected_path(3), k=3)


class TestRuntimeContract:
    """Satellite: runtime= is honoured or rejected, never dropped."""

    @pytest.mark.parametrize(
        "name", [n for n in ALL_NAMES if n != "rid"]
    )
    def test_inert_runtime_is_accepted(self, name):
        detector = resolve_detector(name)
        result = detector.detect(infected_path(3), runtime=RuntimeConfig())
        assert result.initiators

    @pytest.mark.parametrize(
        "name", ["jordan_center", "map_suspect", "multi_source"]
    )
    def test_parallel_runtime_is_rejected(self, name):
        detector = resolve_detector(name)
        with pytest.raises(ConfigError, match="cannot honour"):
            detector.detect(infected_path(3), runtime=RuntimeConfig(workers=2))

    def test_cache_dir_runtime_is_rejected(self, tmp_path):
        detector = resolve_detector("distance_center")
        with pytest.raises(ConfigError, match="cannot honour"):
            detector.detect(
                infected_path(3),
                runtime=RuntimeConfig(cache_dir=str(tmp_path)),
            )

    def test_non_runtime_object_is_rejected(self):
        with pytest.raises(ConfigError, match="RuntimeConfig or None"):
            check_runtime("jordan-center", "workers=2")


class TestSelectWithBudget:
    def test_budget_below_component_floor(self):
        scores = [{"a": 1.0}, {"b": 1.0}]
        with pytest.raises(ConfigError, match=r"budget must be in \[2, 2\]"):
            select_with_budget(scores, 1, method="test")

    def test_budget_above_node_count(self):
        with pytest.raises(ConfigError, match=r"budget must be in \[1, 2\]"):
            select_with_budget([{"a": 1.0, "b": 0.5}], 3, method="test")

    def test_remainder_goes_to_best_scores(self):
        scores = [{"a": 3.0, "b": 2.0, "c": 1.0}]
        assert select_with_budget(scores, 2, method="test") == {"a", "b"}

    def test_score_ties_break_on_repr(self):
        scores = [{"z": 1.0, "a": 1.0, "m": 1.0}]
        assert select_with_budget(scores, 2, method="test") == {"a", "m"}


class TestCentralityEdgeCases:
    """Satellite: single node, disconnected subgraph, determinism."""

    @pytest.mark.parametrize(
        "cls", [RumorCentralityDetector, JordanCenterDetector, DistanceCenterDetector]
    )
    def test_single_node_infection(self, cls):
        g = SignedDiGraph()
        g.add_node("only", NodeState.POSITIVE)
        result = cls().detect(g)
        assert result.initiators == {"only"}
        budgeted = cls().detect_with_budget(g, budget=1)
        assert budgeted.initiators == {"only"}

    @pytest.mark.parametrize(
        "cls", [RumorCentralityDetector, JordanCenterDetector, DistanceCenterDetector]
    )
    def test_disconnected_infected_subgraph(self, cls):
        snapshot = two_component_snapshot()
        result = cls().detect(snapshot)
        assert result.initiators == {"a1", "b1"}

    def test_budget_spans_components(self):
        snapshot = two_component_snapshot()
        result = DistanceCenterDetector().detect_with_budget(snapshot, budget=4)
        assert len(result.initiators) == 4
        assert {"a1", "b1"} <= result.initiators

    @pytest.mark.parametrize("hash_seed", ["0", "1", "31337"])
    def test_tie_breaking_survives_hash_seed(self, hash_seed):
        """A perfectly symmetric snapshot forces a tie; the winner must
        not depend on PYTHONHASHSEED (set-iteration order)."""
        script = (
            "from repro.detectors import resolve_detector\n"
            "from repro.graphs.signed_digraph import SignedDiGraph\n"
            "from repro.types import NodeState\n"
            "g = SignedDiGraph()\n"
            "ring = ['ant', 'bee', 'cat', 'dog', 'eel', 'fox']\n"
            "for i, u in enumerate(ring):\n"
            "    g.add_edge(u, ring[(i + 1) % len(ring)], 1, 0.5)\n"
            "for node in g.nodes():\n"
            "    g.set_state(node, NodeState.POSITIVE)\n"
            "for name in ('jordan_center', 'distance_center', 'multi_source'):\n"
            "    d = resolve_detector(name)\n"
            "    print(name, sorted(d.detect(g).initiators))\n"
        )
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
        out = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        # Every ring node ties; repr-sorted tie-breaking must always
        # pick the same winners regardless of the interpreter's hash
        # seed (multi_source keeps a second, antipodal source — also a
        # pure tie-break).
        assert out.splitlines() == [
            "jordan_center ['ant']",
            "distance_center ['ant']",
            "multi_source ['ant', 'dog']",
        ]


class TestMapSuspect:
    def test_recovers_star_hub(self):
        star = star_graph(8)
        for node in star.nodes():
            star.set_state(node, NodeState.POSITIVE)
        result = MapSuspectDetector(MapSuspectConfig(trials=6)).detect(star)
        assert result.initiators == {0}
        assert result.objective is not None

    def test_deterministic_across_runs(self):
        snapshot = two_component_snapshot()
        config = MapSuspectConfig(trials=4, seed=9)
        first = MapSuspectDetector(config).detect(snapshot)
        second = MapSuspectDetector(config).detect(snapshot)
        assert first.initiators == second.initiators
        assert first.objective == second.objective

    def test_candidate_limit_caps_suspects(self):
        star = star_graph(12)
        for node in star.nodes():
            star.set_state(node, NodeState.POSITIVE)
        rec = MetricsRecorder()
        config = MapSuspectConfig(trials=2, candidate_limit=3)
        MapSuspectDetector(config).detect(star, recorder=rec)
        assert rec.metrics.counters["detector.map_suspect.simulations"] == 3 * 2

    def test_budgeted_selection(self):
        snapshot = two_component_snapshot()
        result = MapSuspectDetector(MapSuspectConfig(trials=3)).detect_with_budget(
            snapshot, budget=3
        )
        assert len(result.initiators) == 3
        assert result.method == "map-suspect(k=3)"

    @pytest.mark.parametrize(
        "kwargs, message",
        [
            ({"model": "lt"}, "model must be one of"),
            ({"trials": 0}, "trials must be >= 1"),
            ({"candidate_limit": 0}, "candidate_limit must be >= 1 or None"),
            ({"smoothing": 0.0}, r"smoothing must be in \(0, 1\)"),
            ({"alpha": 0.5}, "alpha must be >= 1"),
            ({"prior": "zipf"}, "prior must be one of"),
        ],
    )
    def test_config_validation(self, kwargs, message):
        with pytest.raises(ConfigError, match=message):
            MapSuspectConfig(**kwargs).validate()

    def test_degree_prior_accepted(self):
        star = star_graph(5)
        for node in star.nodes():
            star.set_state(node, NodeState.POSITIVE)
        config = MapSuspectConfig(trials=3, prior="degree")
        result = MapSuspectDetector(config).detect(star)
        assert result.initiators == {0}


class TestMultiSource:
    def dumbbell(self) -> SignedDiGraph:
        """Two stars joined by a long path — two sources, one component."""
        g = SignedDiGraph()
        for leaf in range(1, 5):
            g.add_edge("L", f"l{leaf}", 1, 0.5)
            g.add_edge("R", f"r{leaf}", 1, 0.5)
        chain = ["L", "m1", "m2", "m3", "m4", "m5", "R"]
        for u, v in zip(chain, chain[1:]):
            g.add_edge(u, v, 1, 0.5)
        for node in g.nodes():
            g.set_state(node, NodeState.POSITIVE)
        return g

    def test_splits_the_dumbbell(self):
        config = MultiSourceConfig(max_sources_per_component=2)
        result = MultiSourceDetector(config).detect(self.dumbbell())
        assert len(result.initiators) == 2
        left = {"L", "l1", "l2", "l3", "l4", "m1", "m2"}
        right = {"R", "r1", "r2", "r3", "r4", "m4", "m5"}
        assert any(n in left for n in result.initiators)
        assert any(n in right for n in result.initiators)

    def test_single_source_on_a_path(self):
        result = MultiSourceDetector().detect(infected_path(5))
        assert result.initiators == {"2"}

    def test_elbow_rule_stops_growth(self):
        # A tiny path cannot justify 4 sources; radius gains vanish.
        config = MultiSourceConfig(
            max_sources_per_component=4, min_radius_improvement=2
        )
        result = MultiSourceDetector(config).detect(infected_path(4))
        assert len(result.initiators) == 1

    def test_budget_distributes_across_components(self):
        snapshot = two_component_snapshot()
        result = MultiSourceDetector().detect_with_budget(snapshot, budget=4)
        assert len(result.initiators) == 4

    def test_budget_feasibility_range(self):
        snapshot = two_component_snapshot()  # 2 components, 6 nodes
        detector = MultiSourceDetector()
        with pytest.raises(ConfigError, match=r"budget must be in \[2, 6\]"):
            detector.detect_with_budget(snapshot, budget=1)
        with pytest.raises(ConfigError, match=r"budget must be in \[2, 6\]"):
            detector.detect_with_budget(snapshot, budget=7)

    def test_sources_counter(self):
        rec = MetricsRecorder()
        MultiSourceDetector().detect(infected_path(4), recorder=rec)
        assert rec.metrics.counters["detector.multi_source.sources"] >= 1

    @pytest.mark.parametrize(
        "kwargs, message",
        [
            ({"max_sources_per_component": 0}, "max_sources_per_component"),
            ({"min_radius_improvement": -1}, "min_radius_improvement"),
        ],
    )
    def test_config_validation(self, kwargs, message):
        with pytest.raises(ConfigError, match=message):
            MultiSourceConfig(**kwargs).validate()


class TestDeprecationShims:
    def test_core_baselines_reexports_same_objects(self):
        from repro.core import baselines as shim
        from repro.detectors import base, baselines

        assert shim.Detector is base.Detector
        assert shim.DetectionResult is base.DetectionResult
        assert shim.RIDTreeDetector is baselines.RIDTreeDetector
        assert shim.RIDPositiveDetector is baselines.RIDPositiveDetector

    def test_extensions_centrality_reexports_same_objects(self):
        from repro.detectors import centrality
        from repro.extensions import centrality_detectors as shim

        assert shim.JordanCenterDetector is centrality.JordanCenterDetector
        assert shim.RumorCentralityDetector is centrality.RumorCentralityDetector
        assert shim.DistanceCenterDetector is centrality.DistanceCenterDetector
        assert shim.undirected_distances is centrality.undirected_distances

    def test_core_package_lazy_reexport(self):
        import repro.core as core

        assert core.DetectionResult is DetectionResult
        with pytest.raises(AttributeError, match="no attribute"):
            core.not_a_detector_name


class TestResultContract:
    @pytest.mark.parametrize("name", ["jordan_center", "multi_source"])
    def test_results_round_trip_through_json(self, name):
        result = resolve_detector(name).detect(two_component_snapshot())
        decoded = DetectionResult.from_json(result.to_json())
        assert decoded.initiators == result.initiators
        assert decoded.method == result.method
