"""Unit tests for the CSR cascade kernel (`repro.kernel`)."""

import pickle

import pytest

from repro.diffusion.ic import ICModel
from repro.diffusion.mfc import MFCModel
from repro.diffusion.monte_carlo import estimate_spread, simulate_many
from repro.errors import InvalidSeedError
from repro.graphs.signed_digraph import SignedDiGraph
from repro.kernel.cascade import check_seeds_compiled
from repro.kernel.compile import compile_graph
from repro.runtime import RuntimeConfig
from repro.runtime.cache import graph_digest, model_digest
from repro.types import NodeState


def diamond() -> SignedDiGraph:
    g = SignedDiGraph(name="diamond")
    g.add_edge("s", "a", 1, 0.8)
    g.add_edge("s", "b", -1, 0.4)
    g.add_edge("a", "t", 1, 0.5)
    g.add_edge("b", "t", 1, 0.9)
    return g


class TestCompile:
    def test_csr_layout_pinned(self):
        compiled = compile_graph(diamond())
        # repr-sorted node order: 'a' < 'b' < 's' < 't'.
        assert compiled.nodes == ["a", "b", "s", "t"]
        assert compiled.index == {"a": 0, "b": 1, "s": 2, "t": 3}
        assert list(compiled.indptr) == [0, 1, 2, 4, 4]
        assert list(compiled.targets) == [3, 3, 0, 1]  # a->t, b->t, s->a, s->b
        assert list(compiled.signs) == [1, 1, 1, 0]
        assert list(compiled.weights) == [0.5, 0.9, 0.8, 0.4]
        assert compiled.num_nodes == 4
        assert compiled.num_edges == 4

    def test_targets_ascending_within_each_row(self):
        g = SignedDiGraph()
        # Insert successors of 0 in scrambled order.
        for v in (7, 3, 11, 5):
            g.add_edge(0, v, 1, 0.5)
        compiled = compile_graph(g)
        row = list(compiled.targets[compiled.indptr[0] : compiled.indptr[1]])
        assert row == sorted(row)

    def test_probabilities_boost_and_clamp(self):
        compiled = compile_graph(diamond())
        probs = list(compiled.probabilities(3.0))
        # positive slots boosted min(1, 3w); the negative slot keeps w=0.4.
        assert probs == [1.0, 1.0, 1.0, 0.4]
        assert list(compiled.probabilities(1.0)) == [0.5, 0.9, 0.8, 0.4]

    def test_probabilities_cached_per_alpha(self):
        compiled = compile_graph(diamond())
        assert compiled.probabilities(2.0) is compiled.probabilities(2.0)

    def test_has_node(self):
        compiled = compile_graph(diamond())
        assert compiled.has_node("a")
        assert not compiled.has_node("zzz")


class TestCompileCache:
    def test_unmutated_graph_compiles_once(self):
        g = diamond()
        assert compile_graph(g) is compile_graph(g)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda g: g.add_edge("t", "s", 1, 0.2),
            lambda g: g.remove_edge("s", "a"),
            lambda g: g.set_weight("s", "b", 0.7),
            lambda g: g.add_node("new"),
            lambda g: g.remove_node("t"),
        ],
        ids=["add_edge", "remove_edge", "set_weight", "add_node", "remove_node"],
    )
    def test_structural_mutation_invalidates(self, mutate):
        g = diamond()
        before = compile_graph(g)
        mutate(g)
        after = compile_graph(g)
        assert after is not before

    def test_set_state_keeps_compiled_form(self):
        # The CSR form encodes no states; state churn must stay cache-hot.
        g = diamond()
        before = compile_graph(g)
        g.set_state("a", NodeState.POSITIVE)
        assert compile_graph(g) is before

    def test_recompiled_form_reflects_mutation(self):
        g = diamond()
        compile_graph(g)
        g.set_weight("s", "a", 0.1)
        compiled = compile_graph(g)
        slot = compiled.indptr[compiled.index["s"]]
        assert compiled.weights[slot] == 0.1

    def test_distinct_graphs_do_not_share(self):
        assert compile_graph(diamond()) is not compile_graph(diamond())


class TestPickling:
    def test_roundtrip_preserves_arrays_and_results(self):
        g = diamond()
        compiled = compile_graph(g)
        compiled.probabilities(3.0)  # warm the per-alpha cache
        clone = pickle.loads(pickle.dumps(compiled))
        assert clone.nodes == compiled.nodes
        assert list(clone.indptr) == list(compiled.indptr)
        assert list(clone.targets) == list(compiled.targets)
        assert list(clone.signs) == list(compiled.signs)
        assert list(clone.weights) == list(compiled.weights)
        assert list(clone.probabilities(3.0)) == list(compiled.probabilities(3.0))
        model = MFCModel(alpha=3.0)
        seeds = {"s": NodeState.POSITIVE}
        a = model.run_compiled(compiled, seeds, rng=4)
        b = model.run_compiled(clone, seeds, rng=4)
        assert a.events == b.events and a.final_states == b.final_states

    def test_compiled_form_pickles_smaller_than_graph(self):
        g = SignedDiGraph()
        for i in range(300):
            g.add_edge(i, (i + 1) % 300, 1 if i % 3 else -1, 0.3)
            g.add_edge(i, (i + 7) % 300, 1, 0.2)
        compact = len(pickle.dumps(compile_graph(g)))
        full = len(pickle.dumps(g))
        assert compact < full * 0.7  # the point of shipping the CSR form


class TestCompiledSeedValidation:
    def test_empty_seeds_rejected(self):
        with pytest.raises(InvalidSeedError):
            check_seeds_compiled(compile_graph(diamond()), {})

    def test_unknown_node_rejected(self):
        with pytest.raises(InvalidSeedError):
            check_seeds_compiled(
                compile_graph(diamond()), {"zzz": NodeState.POSITIVE}
            )

    def test_inactive_state_rejected(self):
        with pytest.raises(InvalidSeedError):
            check_seeds_compiled(
                compile_graph(diamond()), {"s": NodeState.INACTIVE}
            )

    def test_run_compiled_matches_run(self):
        g = diamond()
        compiled = compile_graph(g)
        for model in (MFCModel(alpha=2.0), ICModel()):
            direct = model.run(g, {"s": NodeState.POSITIVE}, rng=3)
            via_compiled = model.run_compiled(compiled, {"s": NodeState.POSITIVE}, rng=3)
            assert direct.events == via_compiled.events
            assert direct.final_states == via_compiled.final_states
            assert direct.rounds == via_compiled.rounds


class TestGraphDigestMemoization:
    def test_digest_cached_until_mutation(self):
        g = diamond()
        first = graph_digest(g)
        assert g._digest_cache == (g.version, first)
        assert graph_digest(g) == first
        g.set_weight("s", "a", 0.9)
        second = graph_digest(g)
        assert second != first
        assert g._digest_cache == (g.version, second)

    def test_memoized_digest_equals_fresh_computation(self):
        g = diamond()
        graph_digest(g)  # warm the memo
        g.set_state("a", NodeState.NEGATIVE)
        fresh = diamond()
        fresh.set_state("a", NodeState.NEGATIVE)
        assert graph_digest(g) == graph_digest(fresh)

    def test_state_mutation_changes_digest(self):
        g = diamond()
        before = graph_digest(g)
        g.set_state("t", NodeState.POSITIVE)
        assert graph_digest(g) != before


class TestModelDigest:
    def test_kernel_flag_does_not_fork_cache_keys(self):
        # Both paths are bit-identical, so they must share trial caches.
        assert model_digest(MFCModel(use_kernel=True)) == model_digest(
            MFCModel(use_kernel=False)
        )
        assert model_digest(ICModel(use_kernel=True)) == model_digest(
            ICModel(use_kernel=False)
        )

    def test_real_parameters_still_fork(self):
        assert model_digest(MFCModel(alpha=2.0)) != model_digest(MFCModel(alpha=3.0))


def ladder(n: int = 30) -> SignedDiGraph:
    g = SignedDiGraph()
    for i in range(n - 1):
        g.add_edge(i, i + 1, 1 if i % 4 else -1, 0.45)
        if i % 2:
            g.add_edge(i + 1, i, 1, 0.3)
    return g


class TestCompiledShipping:
    def test_simulate_many_kernel_matches_reference_model(self):
        seeds = {0: NodeState.POSITIVE, 7: NodeState.NEGATIVE}
        fast = simulate_many(
            MFCModel(alpha=2.0), ladder(), seeds, trials=6, base_seed=11
        )
        slow = simulate_many(
            MFCModel(alpha=2.0, use_kernel=False), ladder(), seeds, trials=6, base_seed=11
        )
        for a, b in zip(fast, slow):
            assert a.events == b.events
            assert a.final_states == b.final_states
            assert a.rounds == b.rounds

    def test_parallel_compiled_payload_bit_identical(self):
        seeds = {0: NodeState.POSITIVE, 7: NodeState.NEGATIVE}
        serial = simulate_many(
            MFCModel(alpha=2.0), ladder(), seeds, trials=8, base_seed=5
        )
        parallel = simulate_many(
            MFCModel(alpha=2.0),
            ladder(),
            seeds,
            trials=8,
            base_seed=5,
            runtime=RuntimeConfig(workers=2),
        )
        for a, b in zip(serial, parallel):
            assert a.events == b.events
            assert a.final_states == b.final_states


class TestSpreadStateMix:
    def test_negative_fraction_complements_positive(self):
        estimate = estimate_spread(
            MFCModel(alpha=2.0), ladder(), {0: NodeState.POSITIVE}, trials=8, base_seed=1
        )
        assert 0.0 <= estimate.mean_negative_fraction <= 1.0
        assert estimate.mean_positive_fraction + estimate.mean_negative_fraction == (
            pytest.approx(1.0)
        )

    def test_all_negative_cascade(self):
        g = SignedDiGraph()
        g.add_edge(0, 1, 1, 1.0)
        estimate = estimate_spread(
            MFCModel(alpha=3.0), g, {0: NodeState.NEGATIVE}, trials=3
        )
        assert estimate.mean_negative_fraction == 1.0
        assert estimate.mean_positive_fraction == 0.0
