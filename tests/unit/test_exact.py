"""Unit tests for the exact ISOMIT solvers."""

import pytest

from repro.core.exact import exact_isomit_additive, exact_isomit_likelihood
from repro.core.rid import RID, RIDConfig
from repro.errors import DetectionError, EmptyInfectionError
from repro.graphs.signed_digraph import SignedDiGraph
from repro.types import NodeState


def chain(weights, signs=None) -> SignedDiGraph:
    """A consistent positive-state chain with given weights/signs."""
    signs = signs or [1] * len(weights)
    g = SignedDiGraph()
    g.add_node(0, NodeState.POSITIVE)
    state = NodeState.POSITIVE
    for i, (w, s) in enumerate(zip(weights, signs)):
        g.add_edge(i, i + 1, s, w)
        state = state.times(g.sign(i, i + 1))
        g.set_state(i + 1, state)
    return g


class TestGuards:
    def test_empty_rejected(self):
        with pytest.raises(EmptyInfectionError):
            exact_isomit_likelihood(SignedDiGraph())

    def test_oversize_rejected(self):
        g = chain([0.5] * 15)
        with pytest.raises(DetectionError):
            exact_isomit_likelihood(g, max_nodes=10)

    def test_non_infected_rejected(self):
        g = chain([0.5])
        g.set_state(1, NodeState.INACTIVE)
        with pytest.raises(DetectionError):
            exact_isomit_likelihood(g)


class TestLikelihoodSolver:
    def test_single_root_explains_strong_chain(self):
        # alpha 3, w 0.4 -> every link certain: root alone has likelihood 1.
        g = chain([0.4, 0.4])
        solution = exact_isomit_likelihood(g, alpha=3.0)
        assert solution.initiators == {0: NodeState.POSITIVE}
        assert solution.objective == pytest.approx(1.0)

    def test_prefers_fewer_initiators_on_ties(self):
        g = chain([0.4])
        solution = exact_isomit_likelihood(g, alpha=3.0)
        assert len(solution.initiators) == 1

    def test_weak_link_forces_second_initiator(self):
        # Middle link near-zero: explaining node 2 requires it (or an
        # ancestor chain through probability ~0); two initiators win.
        g = chain([0.4, 0.001])
        solution = exact_isomit_likelihood(g, alpha=3.0)
        assert set(solution.initiators) == {0, 2}
        assert solution.objective == pytest.approx(1.0)

    def test_observed_states_only_matches_full_search_without_flips(self):
        g = chain([0.3, 0.2], signs=[1, -1])
        fast = exact_isomit_likelihood(g, alpha=3.0, observed_states_only=True)
        full = exact_isomit_likelihood(g, alpha=3.0, observed_states_only=False)
        assert fast.objective == pytest.approx(full.objective)
        assert fast.evaluated < full.evaluated

    def test_negative_chain_states_respected(self):
        g = chain([0.4], signs=[-1])
        solution = exact_isomit_likelihood(g, alpha=3.0)
        # Node 1 observed NEGATIVE; a single negative-link hop has
        # probability 0.4 < 1, so the optimum adds node 1 as initiator.
        assert solution.initiators[0] is NodeState.POSITIVE
        if 1 in solution.initiators:
            assert solution.initiators[1] is NodeState.NEGATIVE


class TestAdditiveSolver:
    def test_penalty_controls_initiator_count(self):
        g = chain([0.05, 0.05])  # weak everywhere: splitting is tempting
        cheap = exact_isomit_additive(g, alpha=3.0, beta=0.0)
        expensive = exact_isomit_additive(g, alpha=3.0, beta=2.0)
        assert len(cheap.initiators) >= len(expensive.initiators)
        assert len(expensive.initiators) == 1

    def test_objective_accounts_for_beta(self):
        g = chain([0.05])
        solution = exact_isomit_additive(g, alpha=3.0, beta=0.5)
        # Either {0} scoring 1 + 0.15, or {0,1} scoring 2 - 0.5 = 1.5.
        assert solution.objective == pytest.approx(1.5)
        assert set(solution.initiators) == {0, 1}

    def test_upper_bounds_rid_on_same_snapshot(self):
        g = chain([0.2, 0.05, 0.3])
        beta = 0.4
        exact = exact_isomit_additive(g, alpha=3.0, beta=beta)
        detector = RID(RIDConfig(alpha=3.0, beta=beta, k_strategy="exhaustive"))
        rid_result = detector.detect(g)
        assert exact.objective >= (rid_result.objective or 0.0) - 1e-9

    def test_nearest_ancestor_collapse_gap_is_small(self):
        # The DP collapses the noisy-or over all ancestor initiators to
        # the nearest one (DESIGN.md §6.4). The exact solver quantifies
        # the resulting optimality gap; on this chain it is the tiny
        # second-ancestor term (~0.02), far below one β.
        g = chain([0.2, 0.05, 0.3])
        beta = 0.4
        exact = exact_isomit_additive(g, alpha=3.0, beta=beta)
        detector = RID(RIDConfig(alpha=3.0, beta=beta, k_strategy="exhaustive"))
        rid_result = detector.detect(g)
        gap = exact.objective - (rid_result.objective or 0.0)
        assert 0.0 <= gap < 0.1
        # Both agree on the dominant structure: the root plus a split
        # below the weakest link.
        assert {0, 2} <= set(exact.initiators)
        assert {0, 2} <= rid_result.initiators
