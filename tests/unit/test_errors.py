"""Contract tests for the exception hierarchy.

Callers rely on two properties: every library error is a
:class:`ReproError`, and lookup/validation errors double as the matching
builtin (``KeyError`` / ``ValueError``) so idiomatic ``except`` clauses
keep working.
"""

import pytest

from repro import errors
from repro.graphs.signed_digraph import SignedDiGraph


ALL_ERRORS = [
    errors.GraphError,
    errors.NodeNotFoundError,
    errors.EdgeNotFoundError,
    errors.DuplicateNodeError,
    errors.InvalidSignError,
    errors.InvalidWeightError,
    errors.NotATreeError,
    errors.NotBinaryTreeError,
    errors.GraphFormatError,
    errors.DiffusionError,
    errors.InvalidSeedError,
    errors.InvalidModelParameterError,
    errors.DetectionError,
    errors.EmptyInfectionError,
    errors.ArborescenceError,
    errors.DynamicProgramError,
    errors.ComplexityError,
    errors.InvalidSetCoverError,
    errors.InfeasibleCoverError,
    errors.ExperimentError,
    errors.ConfigError,
]


class TestHierarchy:
    @pytest.mark.parametrize("error_class", ALL_ERRORS)
    def test_everything_is_a_repro_error(self, error_class):
        assert issubclass(error_class, errors.ReproError)

    def test_lookup_errors_are_key_errors(self):
        assert issubclass(errors.NodeNotFoundError, KeyError)
        assert issubclass(errors.EdgeNotFoundError, KeyError)

    @pytest.mark.parametrize(
        "error_class",
        [
            errors.InvalidSignError,
            errors.InvalidWeightError,
            errors.InvalidSeedError,
            errors.InvalidModelParameterError,
            errors.EmptyInfectionError,
            errors.ConfigError,
            errors.InvalidSetCoverError,
            errors.GraphFormatError,
            errors.NotATreeError,
        ],
    )
    def test_validation_errors_are_value_errors(self, error_class):
        assert issubclass(error_class, ValueError)

    def test_not_binary_tree_specialises_not_a_tree(self):
        assert issubclass(errors.NotBinaryTreeError, errors.NotATreeError)


class TestErrorPayloads:
    def test_node_not_found_carries_node(self):
        g = SignedDiGraph()
        with pytest.raises(errors.NodeNotFoundError) as excinfo:
            g.state("ghost")
        assert excinfo.value.node == "ghost"
        assert "ghost" in str(excinfo.value)

    def test_edge_not_found_carries_edge(self):
        g = SignedDiGraph()
        g.add_nodes(["a", "b"])
        with pytest.raises(errors.EdgeNotFoundError) as excinfo:
            g.edge("a", "b")
        assert excinfo.value.edge == ("a", "b")

    def test_graph_format_error_line_numbers(self):
        error = errors.GraphFormatError("bad row", line_number=42)
        assert "line 42" in str(error)
        assert error.line_number == 42

    def test_graph_format_error_without_line(self):
        error = errors.GraphFormatError("bad payload")
        assert error.line_number is None

    def test_single_except_clause_catches_all(self):
        g = SignedDiGraph()
        caught = 0
        for action in (
            lambda: g.remove_node("x"),
            lambda: g.edge("x", "y"),
            lambda: g.add_edge("a", "b", 0, 0.5),
            lambda: g.add_edge("a", "b", 1, 2.0),
        ):
            try:
                action()
            except errors.ReproError:
                caught += 1
        assert caught == 4
