"""Unit tests for component detection and cascade-forest extraction."""

import pytest

from repro.core.cascade_forest import extract_cascade_forest, split_branching_into_trees
from repro.core.components import infected_components, weakly_connected_components
from repro.core.arborescence import maximum_spanning_branching
from repro.errors import EmptyInfectionError
from repro.graphs.generators.trees import is_arborescence
from repro.graphs.signed_digraph import SignedDiGraph
from repro.types import NodeState


def two_component_graph() -> SignedDiGraph:
    g = SignedDiGraph()
    g.add_edge("a", "b", 1, 0.5)
    g.add_edge("b", "c", 1, 0.4)
    g.add_edge("x", "y", -1, 0.3)
    for node in g.nodes():
        g.set_state(node, NodeState.POSITIVE)
    # Make the negative link consistent: x(+) -> y must be NEGATIVE.
    g.set_state("y", NodeState.NEGATIVE)
    return g


class TestWeaklyConnectedComponents:
    def test_counts_components(self):
        comps = weakly_connected_components(two_component_graph())
        assert len(comps) == 2
        assert {frozenset(c) for c in comps} == {
            frozenset({"a", "b", "c"}),
            frozenset({"x", "y"}),
        }

    def test_direction_ignored(self):
        g = SignedDiGraph()
        g.add_edge("a", "b", 1, 0.5)
        g.add_edge("c", "b", 1, 0.5)  # b has two in-edges, no out
        comps = weakly_connected_components(g)
        assert len(comps) == 1

    def test_isolated_nodes_are_singletons(self):
        g = SignedDiGraph()
        g.add_nodes(["p", "q"])
        assert len(weakly_connected_components(g)) == 2

    def test_empty_graph(self):
        assert weakly_connected_components(SignedDiGraph()) == []

    def test_infected_components_preserve_states(self):
        comps = infected_components(two_component_graph())
        by_nodes = {frozenset(c.nodes()): c for c in comps}
        small = by_nodes[frozenset({"x", "y"})]
        assert small.state("y") is NodeState.NEGATIVE


class TestSplitBranching:
    def test_splits_by_roots(self):
        branching = maximum_spanning_branching(two_component_graph())
        trees = split_branching_into_trees(branching)
        assert len(trees) == 2
        assert all(is_arborescence(t) for t in trees)

    def test_covers_all_nodes_exactly_once(self):
        branching = maximum_spanning_branching(two_component_graph())
        trees = split_branching_into_trees(branching)
        all_nodes = [n for t in trees for n in t.nodes()]
        assert sorted(all_nodes) == sorted(branching.nodes())


class TestExtractCascadeForest:
    def test_empty_infection_rejected(self):
        with pytest.raises(EmptyInfectionError):
            extract_cascade_forest(SignedDiGraph())

    def test_trees_are_arborescences(self):
        trees = extract_cascade_forest(two_component_graph())
        assert all(is_arborescence(t) for t in trees)

    def test_total_coverage(self):
        g = two_component_graph()
        trees = extract_cascade_forest(g)
        assert sum(t.number_of_nodes() for t in trees) == g.number_of_nodes()

    def test_pruning_drops_inconsistent_links(self):
        g = SignedDiGraph()
        g.add_edge("a", "b", 1, 0.9)  # a(+) -> b(-) positive: INCONSISTENT
        g.set_states({"a": NodeState.POSITIVE, "b": NodeState.NEGATIVE})
        pruned_trees = extract_cascade_forest(g, prune_inconsistent=True)
        assert len(pruned_trees) == 2  # split into two singletons
        unpruned_trees = extract_cascade_forest(g, prune_inconsistent=False)
        assert len(unpruned_trees) == 1

    def test_consistent_links_survive_pruning(self):
        g = SignedDiGraph()
        g.add_edge("a", "b", -1, 0.9)  # a(+) -> b(-) negative: consistent
        g.set_states({"a": NodeState.POSITIVE, "b": NodeState.NEGATIVE})
        trees = extract_cascade_forest(g, prune_inconsistent=True)
        assert len(trees) == 1
        assert trees[0].has_edge("a", "b")

    def test_likelihood_maximal_parent_chosen(self):
        g = SignedDiGraph()
        g.add_edge("a", "c", 1, 0.2)
        g.add_edge("b", "c", 1, 0.7)
        g.add_edge("a", "b", 1, 0.6)
        for node in g.nodes():
            g.set_state(node, NodeState.POSITIVE)
        (tree,) = extract_cascade_forest(g)
        assert tree.has_edge("b", "c")
        assert not tree.has_edge("a", "c")
