"""Unit tests for structural-balance analysis."""

import pytest

from repro.graphs.balance import (
    is_balanced,
    node_balance_degree,
    triangle_census,
    two_faction_partition,
)
from repro.graphs.signed_digraph import SignedDiGraph


def triangle(signs) -> SignedDiGraph:
    g = SignedDiGraph()
    g.add_edge("a", "b", signs[0], 0.5)
    g.add_edge("b", "c", signs[1], 0.5)
    g.add_edge("a", "c", signs[2], 0.5)
    return g


class TestTriangleCensus:
    def test_all_positive(self):
        census = triangle_census(triangle([1, 1, 1]))
        assert census.all_positive == 1
        assert census.total == 1
        assert census.balance_ratio == 1.0

    def test_one_negative_unbalanced(self):
        census = triangle_census(triangle([1, 1, -1]))
        assert census.one_negative == 1
        assert census.balanced == 0

    def test_two_negative_balanced(self):
        census = triangle_census(triangle([-1, -1, 1]))
        assert census.two_negative == 1
        assert census.balance_ratio == 1.0

    def test_all_negative_unbalanced(self):
        census = triangle_census(triangle([-1, -1, -1]))
        assert census.all_negative == 1
        assert census.balance_ratio == 0.0

    def test_triangle_free_ratio_one(self):
        g = SignedDiGraph()
        g.add_edge("a", "b", 1, 0.5)
        assert triangle_census(g).balance_ratio == 1.0

    def test_matches_stats_module(self):
        from repro.graphs.stats import triangle_balance_counts

        g = triangle([1, -1, -1])
        g.add_edge("c", "d", 1, 0.5)
        g.add_edge("b", "d", -1, 0.5)
        census = triangle_census(g)
        balanced, unbalanced = triangle_balance_counts(g)
        assert census.balanced == balanced
        assert census.total - census.balanced == unbalanced


class TestNodeBalanceDegree:
    def test_balanced_node(self):
        assert node_balance_degree(triangle([1, 1, 1]), "a") == 1.0

    def test_unbalanced_node(self):
        assert node_balance_degree(triangle([1, 1, -1]), "a") == 0.0

    def test_triangle_free_node(self):
        g = SignedDiGraph()
        g.add_edge("a", "b", 1, 0.5)
        assert node_balance_degree(g, "a") == 1.0


class TestTwoFactionPartition:
    def test_balanced_graph_zero_frustration(self):
        # Two all-positive cliques joined by negative edges: balanced.
        g = SignedDiGraph()
        g.add_edge("a1", "a2", 1, 0.5)
        g.add_edge("b1", "b2", 1, 0.5)
        g.add_edge("a1", "b1", -1, 0.5)
        g.add_edge("a2", "b2", -1, 0.5)
        faction_a, faction_b, frustrated = two_faction_partition(g)
        assert frustrated == 0
        assert {frozenset(faction_a), frozenset(faction_b)} == {
            frozenset({"a1", "a2"}),
            frozenset({"b1", "b2"}),
        }

    def test_unbalanced_triangle_has_frustration(self):
        _, _, frustrated = two_faction_partition(triangle([1, 1, -1]))
        assert frustrated >= 1

    def test_partition_covers_all_nodes(self):
        g = triangle([1, -1, -1])
        faction_a, faction_b, _ = two_faction_partition(g)
        assert faction_a | faction_b == set(g.nodes())
        assert not faction_a & faction_b


class TestIsBalanced:
    def test_balanced_cases(self):
        assert is_balanced(triangle([1, 1, 1]))
        assert is_balanced(triangle([-1, -1, 1]))

    def test_unbalanced_cases(self):
        assert not is_balanced(triangle([1, 1, -1]))
        assert not is_balanced(triangle([-1, -1, -1]))

    def test_forest_always_balanced(self):
        g = SignedDiGraph()
        g.add_edge("a", "b", -1, 0.5)
        g.add_edge("b", "c", -1, 0.5)
        assert is_balanced(g)

    def test_empty_graph_balanced(self):
        assert is_balanced(SignedDiGraph())
