"""Unit tests for Jaccard-coefficient weighting (Sec. IV-B3)."""

import pytest

from repro.graphs.signed_digraph import SignedDiGraph
from repro.graphs.transforms import to_diffusion_network
from repro.weights.jaccard import (
    assign_jaccard_weights,
    assign_uniform_weights,
    jaccard_coefficient,
)


def social_square() -> SignedDiGraph:
    """a and b both follow c and d; plus a follows b."""
    g = SignedDiGraph()
    g.add_edge("a", "c", 1, 1.0)
    g.add_edge("a", "d", 1, 1.0)
    g.add_edge("b", "c", 1, 1.0)
    g.add_edge("b", "d", 1, 1.0)
    g.add_edge("a", "b", -1, 1.0)
    return g


class TestJaccardCoefficient:
    def test_formula(self):
        g = social_square()
        # JC(a, b) = |out(a) ∩ in(b)| / |out(a) ∪ in(b)|
        # out(a) = {b, c, d}; in(b) = {a}; intersection empty.
        assert jaccard_coefficient(g, "a", "b") == 0.0

    def test_shared_neighbourhood(self):
        g = social_square()
        g.add_edge("c", "d", 1, 1.0)
        # out(a) = {b, c, d}; in(d) = {a, b, c}; ∩ = {b, c}; ∪ = {a, b, c, d}.
        assert jaccard_coefficient(g, "a", "d") == pytest.approx(2 / 4)

    def test_empty_neighbourhoods(self):
        g = SignedDiGraph()
        g.add_nodes(["x", "y"])
        assert jaccard_coefficient(g, "x", "y") == 0.0


class TestAssignJaccardWeights:
    def test_weights_from_reversed_social_link(self):
        social = social_square()
        social.add_edge("c", "d", 1, 1.0)
        diffusion = to_diffusion_network(social)
        assign_jaccard_weights(diffusion, social, rng=1)
        # Diffusion link (d, a) corresponds to social (a, d): JC = 0.5.
        assert diffusion.weight("d", "a") == pytest.approx(0.5)

    def test_zero_scores_filled_from_range(self):
        social = social_square()
        diffusion = to_diffusion_network(social)
        assign_jaccard_weights(diffusion, social, zero_fill_range=(0.0, 0.1), rng=1)
        # Social (a, b) had JC 0 -> diffusion (b, a) in [0, 0.1].
        assert 0.0 <= diffusion.weight("b", "a") <= 0.1

    def test_zero_fill_deterministic(self):
        social = social_square()
        d1 = assign_jaccard_weights(to_diffusion_network(social), social, rng=42)
        d2 = assign_jaccard_weights(to_diffusion_network(social), social, rng=42)
        assert [w.weight for _, _, w in d1.edges()] == [
            w.weight for _, _, w in d2.edges()
        ]

    def test_gain_amplifies_positive_nonzero_scores(self):
        social = social_square()
        social.add_edge("c", "d", 1, 1.0)
        diffusion = to_diffusion_network(social)
        assign_jaccard_weights(diffusion, social, rng=1, gain=1.6)
        assert diffusion.weight("d", "a") == pytest.approx(0.8)

    def test_gain_clamped_at_one(self):
        social = social_square()
        social.add_edge("c", "d", 1, 1.0)
        diffusion = to_diffusion_network(social)
        assign_jaccard_weights(diffusion, social, rng=1, gain=10.0)
        assert diffusion.weight("d", "a") == 1.0

    def test_gain_skips_negative_links(self):
        social = social_square()
        # Make (a, d) negative and give it a non-zero JC.
        social.add_edge("c", "d", 1, 1.0)
        social.add_edge("a", "d", -1, 1.0)
        diffusion = to_diffusion_network(social)
        assign_jaccard_weights(diffusion, social, rng=1, gain=1.6)
        assert diffusion.weight("d", "a") == pytest.approx(0.5)  # unamplified

    def test_signs_untouched(self):
        social = social_square()
        diffusion = to_diffusion_network(social)
        signs_before = {(u, v): int(d.sign) for u, v, d in diffusion.iter_edges()}
        assign_jaccard_weights(diffusion, social, rng=1)
        assert {(u, v): int(d.sign) for u, v, d in diffusion.iter_edges()} == signs_before


class TestCalibrateGain:
    def build_overlapping(self, jc_scale: int, dilution: int = 0) -> SignedDiGraph:
        """A graph whose positive edges have controllable JC magnitude.

        ``jc_scale`` common neighbours u -> w_i -> t give edge (u, t) a
        non-zero JC; ``dilution`` extra leaves u -> x_j shrink it.
        """
        g = SignedDiGraph()
        g.add_edge("u", "t", 1, 1.0)
        for i in range(jc_scale):
            g.add_edge("u", f"w{i}", 1, 1.0)
            g.add_edge(f"w{i}", "t", 1, 1.0)
        for j in range(dilution):
            g.add_edge("u", f"x{j}", 1, 1.0)
        return g

    def test_pivot_lands_at_saturation(self):
        from repro.weights.jaccard import calibrate_gain

        # Dilute so the pivot JC is well below 1/alpha and the gain floor
        # does not bind.
        g = self.build_overlapping(2, dilution=20)
        alpha = 3.0
        gain = calibrate_gain(g, alpha=alpha, saturation_quantile=0.0)
        scores = sorted(
            jc
            for u, v, _ in g.iter_edges()
            if (jc := jaccard_coefficient(g, u, v)) > 0
        )
        assert gain > 1.0
        assert gain * alpha * scores[0] == pytest.approx(1.0)

    def test_no_positive_jc_returns_one(self):
        from repro.weights.jaccard import calibrate_gain

        g = SignedDiGraph()
        g.add_edge("a", "b", 1, 1.0)  # JC(a, b) = 0 (no overlap)
        assert calibrate_gain(g) == 1.0

    def test_gain_capped(self):
        from repro.weights.jaccard import calibrate_gain

        g = self.build_overlapping(1)
        # Huge alpha shrinks the needed gain; tiny alpha grows it but
        # never past max_gain.
        assert calibrate_gain(g, alpha=0.001, max_gain=10.0) == 10.0

    def test_gain_at_least_one(self):
        from repro.weights.jaccard import calibrate_gain

        g = self.build_overlapping(30)  # strong overlap: no gain needed
        assert calibrate_gain(g, alpha=3.0) >= 1.0

    def test_more_overlap_means_less_gain(self):
        from repro.weights.jaccard import calibrate_gain

        weak = calibrate_gain(self.build_overlapping(1), alpha=3.0)
        strong = calibrate_gain(self.build_overlapping(8), alpha=3.0)
        assert strong <= weak

    def test_workload_auto_mode(self):
        from repro.experiments.config import WorkloadConfig
        from repro.experiments.workload import build_workload

        config = WorkloadConfig(dataset="slashdot", scale=0.003, seed=3, jaccard_gain="auto")
        config.validate()
        workload = build_workload(config)
        assert workload.infected.number_of_nodes() >= len(workload.seeds)

    def test_config_rejects_bad_gain_strings(self):
        from repro.errors import ConfigError
        from repro.experiments.config import WorkloadConfig

        with pytest.raises(ConfigError):
            WorkloadConfig(jaccard_gain="automatic").validate()
        with pytest.raises(ConfigError):
            WorkloadConfig(jaccard_gain=0.5).validate()


class TestAssignUniformWeights:
    def test_weights_in_range(self):
        g = social_square()
        assign_uniform_weights(g, weight_range=(0.2, 0.3), rng=1)
        assert all(0.2 <= d.weight <= 0.3 for _, _, d in g.iter_edges())

    def test_deterministic(self):
        a = assign_uniform_weights(social_square(), rng=5)
        b = assign_uniform_weights(social_square(), rng=5)
        assert [d.weight for _, _, d in a.edges()] == [d.weight for _, _, d in b.edges()]
