"""Tests for the stable facade (:mod:`repro.api`) and compatibility shims."""

import warnings

import pytest

import repro
from repro import api
from repro.core.rid import RID, RIDConfig
from repro.core.baselines import resolve_budget_kwargs
from repro.diffusion.mfc import MFCModel
from repro.errors import ConfigError
from repro.experiments.config import WorkloadConfig
from repro.experiments.runner import AggregatedEvaluation, DetectorEvaluation
from repro.experiments.workload import build_workload
from repro.extensions.certainty_cover import CertaintyCoverDetector
from repro.extensions.effectors import KEffectorsDetector
from repro.extensions.simulation_matching import SimulationMatchingDetector
from repro.graphs.generators.random_graphs import signed_erdos_renyi
from repro.obs import MetricsRecorder
from repro.types import NodeState


@pytest.fixture(scope="module")
def network():
    return signed_erdos_renyi(
        60, 0.08, positive_probability=0.8, weight_range=(0.1, 0.6), rng=5
    )


@pytest.fixture(scope="module")
def cascade(network):
    seeds = {0: NodeState.POSITIVE, 7: NodeState.NEGATIVE}
    return MFCModel(alpha=3.0).run(network, seeds, rng=11)


class TestFacadeExports:
    def test_import_repro_detect_works(self):
        assert repro.detect is api.detect
        assert repro.simulate is api.simulate
        assert repro.evaluate is api.evaluate

    def test_blessed_types_reexported(self):
        for name in (
            "RIDConfig",
            "DetectionResult",
            "RuntimeConfig",
            "TrialReport",
            "MetricsRecorder",
            "TraceRecorder",
            "format_report",
            "using_recorder",
        ):
            assert hasattr(repro, name), name
            assert name in repro.__all__


class TestSimulate:
    def test_single_cascade_matches_model_run(self, network, cascade):
        seeds = {0: NodeState.POSITIVE, 7: NodeState.NEGATIVE}
        result = repro.simulate(network, seeds, model="mfc", rng=11)
        assert result.events == cascade.events
        assert result.final_states == cascade.final_states

    def test_model_instance_accepted(self, network):
        seeds = {0: NodeState.POSITIVE}
        result = repro.simulate(network, seeds, model=MFCModel(alpha=2.0), rng=3)
        assert 0 in result.infected_nodes()

    def test_default_model_is_mfc(self, network):
        seeds = {0: NodeState.POSITIVE}
        assert (
            repro.simulate(network, seeds, rng=3).events
            == repro.simulate(network, seeds, model="mfc", rng=3).events
        )

    def test_unknown_model_name(self, network):
        with pytest.raises(ConfigError, match="unknown diffusion model"):
            repro.simulate(network, {0: NodeState.POSITIVE}, model="sis")

    def test_multi_trial_returns_list(self, network):
        outs = repro.simulate(network, {0: NodeState.POSITIVE}, trials=3, rng=9)
        assert len(outs) == 3
        # trials use derived seeds -> independent cascades, deterministic
        again = repro.simulate(network, {0: NodeState.POSITIVE}, trials=3, rng=9)
        assert [o.events for o in outs] == [a.events for a in again]

    def test_multi_trial_needs_integer_seed(self, network):
        import random

        with pytest.raises(ConfigError, match="integer base seed"):
            repro.simulate(
                network, {0: NodeState.POSITIVE}, trials=2, rng=random.Random(0)
            )


class TestDetect:
    def test_diffusion_result_snapshot(self, network, cascade):
        result = repro.detect(network, cascade)
        assert result.method.startswith("rid")
        assert result.initiators <= set(cascade.infected_nodes())

    def test_none_snapshot_means_graph_is_infected(self, network, cascade):
        infected = cascade.infected_network(network)
        direct = repro.detect(infected)
        via_snapshot = repro.detect(network, cascade)
        assert direct.initiators == via_snapshot.initiators

    def test_mapping_snapshot(self, network, cascade):
        states = {node: int(state) for node, state in cascade.final_states.items()}
        result = repro.detect(network, states)
        assert result.initiators == repro.detect(network, cascade).initiators

    def test_mapping_snapshot_unknown_node(self, network):
        with pytest.raises(ConfigError, match="not in the network"):
            repro.detect(network, {"nope": 1})

    def test_custom_config(self, network, cascade):
        result = repro.detect(network, cascade, config=RIDConfig(beta=5.0))
        assert result.initiators  # heavy penalty -> fewer, but never zero

    def test_custom_detector(self, network, cascade):
        result = repro.detect(
            network, cascade, detector=CertaintyCoverDetector(alpha=3.0)
        )
        assert result.method == "certainty-cover"

    def test_config_and_detector_conflict(self, network, cascade):
        with pytest.raises(ConfigError, match="not both"):
            repro.detect(
                network,
                cascade,
                config=RIDConfig(),
                detector=CertaintyCoverDetector(),
            )

    def test_budget_path(self, network, cascade):
        # the knapsack needs budget >= number of cascade trees (4 here)
        result = repro.detect(network, cascade, budget=5)
        assert len(result.initiators) == 5

    def test_recorder_sees_pipeline_stages(self, network, cascade):
        rec = MetricsRecorder()
        repro.detect(network, cascade, recorder=rec)
        counters = rec.metrics.counters
        assert counters["rid.trees"] >= 1
        assert counters["rid.components"] >= 1
        assert "rid.detect" in rec.metrics.timers
        assert "rid.tree_dp" in rec.metrics.timers


class TestNamedDetectors:
    def test_registry_rid_is_bit_identical_to_default(self, network, cascade):
        default = repro.detect(network, cascade)
        named = repro.detect(network, cascade, detector="rid")
        assert named.to_json() == default.to_json()

    def test_named_centrality_with_budget(self, network, cascade):
        result = repro.detect(
            network, cascade, detector="rumor_centrality", budget=5
        )
        assert result.method == "rumor-centrality(k=5)"
        assert len(result.initiators) == 5

    def test_hyphen_spelling_accepted(self, network, cascade):
        hyphen = repro.detect(network, cascade, detector="jordan-center")
        snake = repro.detect(network, cascade, detector="jordan_center")
        assert hyphen.initiators == snake.initiators

    def test_config_dict_for_named_detector(self, network, cascade):
        result = repro.detect(
            network,
            cascade,
            detector="map_suspect",
            config={"trials": 2, "candidate_limit": 4},
        )
        assert result.method == "map-suspect"

    def test_unknown_name_lists_registry(self, network, cascade):
        with pytest.raises(ConfigError, match="unknown detector"):
            repro.detect(network, cascade, detector="page_rank")

    def test_backend_is_rid_only(self, network, cascade):
        with pytest.raises(ConfigError, match="backend"):
            repro.detect(
                network, cascade, detector="jordan_center", backend="numpy"
            )

    def test_runtime_rejected_by_in_process_detector(self, network, cascade):
        from repro.runtime.config import RuntimeConfig

        with pytest.raises(ConfigError, match="cannot honour"):
            repro.detect(
                network,
                cascade,
                detector="jordan_center",
                runtime=RuntimeConfig(workers=2),
            )

    def test_detector_metrics_are_recorded(self, network, cascade):
        rec = MetricsRecorder()
        repro.detect(network, cascade, detector="distance_center", recorder=rec)
        counters = rec.metrics.counters
        assert counters["detector.requests"] == 1
        assert counters["detector.distance_center.requests"] == 1
        assert counters["detector.initiators"] >= 1


class TestEvaluateRuntime:
    """evaluate() must forward runtime= or raise — never drop it."""

    @pytest.fixture(scope="class")
    def workload(self):
        return build_workload(
            WorkloadConfig(dataset="epinions", scale=0.004, seed=3), trial=0
        )

    def test_runtime_forwarded_to_rid(self, workload):
        from repro.runtime.config import RuntimeConfig

        serial = repro.evaluate(RID(RIDConfig()), workload)
        parallel = repro.evaluate(
            RID(RIDConfig()), workload, RuntimeConfig(workers=2)
        )
        assert parallel.identity.f1 == serial.identity.f1

    def test_runtime_reaches_in_process_detector(self, workload):
        from repro.detectors.centrality import JordanCenterDetector
        from repro.runtime.config import RuntimeConfig

        with pytest.raises(ConfigError, match="cannot honour"):
            repro.evaluate(
                JordanCenterDetector(), workload, RuntimeConfig(workers=2)
            )

    def test_inert_runtime_accepted(self, workload):
        from repro.detectors.centrality import JordanCenterDetector
        from repro.runtime.config import RuntimeConfig

        evaluation = repro.evaluate(
            JordanCenterDetector(), workload, RuntimeConfig()
        )
        assert isinstance(evaluation, DetectorEvaluation)

    def test_named_detector_evaluation(self):
        config = WorkloadConfig(dataset="epinions", scale=0.004, seed=3)
        aggregated = repro.evaluate("distance_center", config, trials=2)
        assert isinstance(aggregated, AggregatedEvaluation)

    def test_config_requires_registry_name(self):
        config = WorkloadConfig(dataset="epinions", scale=0.004, seed=3)
        with pytest.raises(ConfigError, match="registry names"):
            repro.evaluate(
                RID(RIDConfig()), config, config={"trials": 2}, trials=1
            )


class TestEvaluate:
    def test_workload_form(self):
        config = WorkloadConfig(dataset="epinions", scale=0.004, seed=3)
        workload = build_workload(config, trial=0)
        evaluation = repro.evaluate(RID(RIDConfig()), workload)
        assert isinstance(evaluation, DetectorEvaluation)
        assert 0.0 <= evaluation.identity.f1 <= 1.0

    def test_config_form_aggregates(self):
        config = WorkloadConfig(dataset="epinions", scale=0.004, seed=3)
        aggregated = repro.evaluate(
            lambda: RID(RIDConfig()), config, trials=2
        )
        assert isinstance(aggregated, AggregatedEvaluation)
        assert aggregated.trials == 2

    def test_rejects_other_workloads(self):
        with pytest.raises(ConfigError, match="Workload or WorkloadConfig"):
            repro.evaluate(RID(RIDConfig()), workload="fig4")


class TestApiErrorPaths:
    """The facade's rejection branches, each pinned to its message."""

    def test_backend_with_detector_conflicts(self, network, cascade):
        with pytest.raises(ConfigError, match="backend= configures RID"):
            repro.detect(
                network, cascade, detector=CertaintyCoverDetector(), backend="python"
            )

    def test_backend_with_model_instance_conflicts(self, network):
        with pytest.raises(ConfigError, match="pass backend= to the model"):
            repro.simulate(
                network,
                {0: NodeState.POSITIVE},
                model=MFCModel(alpha=3.0),
                backend="python",
            )

    def test_backend_with_kernel_free_model_name(self, network):
        # LT does not run on the cascade kernel; the registry factory
        # takes no backend= and the facade translates the TypeError.
        with pytest.raises(ConfigError, match="does not run on the cascade kernel"):
            repro.simulate(
                network, {0: NodeState.POSITIVE}, model="lt", backend="numpy"
            )

    def test_unknown_model_of_wrong_type(self, network):
        # Unhashable model values hit the registry's TypeError branch.
        with pytest.raises(ConfigError, match="unknown diffusion model"):
            repro.simulate(network, {0: NodeState.POSITIVE}, model=["mfc"])

    def test_non_int_rng_with_trials(self, network):
        with pytest.raises(ConfigError, match="integer base seed, got Random"):
            import random

            repro.simulate(
                network, {0: NodeState.POSITIVE}, trials=2, rng=random.Random(1)
            )

    def test_config_plus_detector_conflict_message(self, network, cascade):
        with pytest.raises(ConfigError, match="not both"):
            repro.detect(
                network, cascade, config=RIDConfig(), detector=CertaintyCoverDetector()
            )

    @pytest.mark.parametrize("workload", ["fig4", 7, None, {"dataset": "epinions"}])
    def test_evaluate_rejects_unknown_workload_types(self, workload):
        with pytest.raises(ConfigError, match="Workload or WorkloadConfig"):
            repro.evaluate(RID(RIDConfig()), workload)


class TestRIDConfigValidation:
    def test_invalid_config_raises_at_construction(self):
        with pytest.raises(ConfigError):
            RID(RIDConfig(alpha=0.5))

    @pytest.mark.parametrize(
        "kwargs, message",
        [
            ({"alpha": 0.5}, "alpha must be >= 1, got 0.5"),
            ({"beta": -1.0}, "beta must be >= 0, got -1.0"),
            ({"score": "weird"}, "score must be 'log' or 'raw', got 'weird'"),
            (
                {"k_strategy": "random"},
                "k_strategy must be 'greedy' or 'exhaustive', got 'random'",
            ),
            ({"max_k_per_tree": 0}, "max_k_per_tree must be >= 1 or None, got 0"),
        ],
    )
    def test_error_messages_name_field_and_value(self, kwargs, message):
        with pytest.raises(ConfigError, match="^" + message.replace("(", "\\(")):
            RIDConfig(**kwargs).validate()


class TestBudgetKwargUnification:
    def test_budget_passes_clean(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_budget_kwargs(4) == 4

    @pytest.mark.parametrize("alias", ["k", "max_k"])
    def test_removed_aliases_raise_pointing_at_budget(self, alias):
        # The k=/max_k= DeprecationWarning cycle is complete: the
        # spellings are gone, and the error names the replacement.
        with pytest.raises(ConfigError, match=r"pass budget=3"):
            resolve_budget_kwargs(None, **{alias: 3})

    def test_removed_alias_raises_even_next_to_budget(self):
        with pytest.raises(ConfigError, match="was removed"):
            resolve_budget_kwargs(2, k=3)

    def test_missing_budget_raises(self):
        with pytest.raises(ConfigError, match="budget="):
            resolve_budget_kwargs(None)

    def test_rid_detect_with_budget_rejects_legacy_k(self, network, cascade):
        infected = cascade.infected_network(network)
        detector = RID(RIDConfig())
        with pytest.raises(ConfigError, match="rid.detect_with_budget\\(k=...\\)"):
            detector.detect_with_budget(infected, k=5)
        assert detector.detect_with_budget(infected, 5).initiators

    def test_effectors_legacy_kwarg(self):
        with pytest.warns(DeprecationWarning, match="k_per_component"):
            detector = KEffectorsDetector(k_per_component=2)
        assert detector.budget == 2
        assert detector.k_per_component == 2  # property alias still reads

    def test_simulation_matching_legacy_kwarg(self):
        with pytest.warns(DeprecationWarning, match="max_initiators_per_component"):
            detector = SimulationMatchingDetector(max_initiators_per_component=2)
        assert detector.budget == 2
        assert detector.max_initiators == 2

    def test_certainty_cover_legacy_kwarg(self):
        with pytest.warns(DeprecationWarning, match="max_initiators"):
            detector = CertaintyCoverDetector(max_initiators=2)
        assert detector.budget == 2
        assert detector.max_initiators == 2

    def test_new_spellings_are_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            KEffectorsDetector(budget=2)
            SimulationMatchingDetector(budget=2)
            CertaintyCoverDetector(budget=2)
