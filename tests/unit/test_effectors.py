"""Unit tests for the k-effectors baseline."""

import pytest

from repro.errors import InvalidModelParameterError
from repro.extensions.effectors import KEffectorsDetector
from repro.graphs.generators.trees import path_graph, star_graph
from repro.graphs.signed_digraph import SignedDiGraph
from repro.types import NodeState


def infected(graph: SignedDiGraph) -> SignedDiGraph:
    for node in graph.nodes():
        graph.set_state(node, NodeState.POSITIVE)
    return graph


class TestParameters:
    def test_bad_k_rejected(self):
        with pytest.raises(InvalidModelParameterError):
            KEffectorsDetector(budget=0)

    def test_bad_trials_rejected(self):
        with pytest.raises(InvalidModelParameterError):
            KEffectorsDetector(trials=0)


class TestDetection:
    def test_star_hub_detected(self):
        # The hub explains all leaves with certainty; any leaf explains
        # almost nothing.
        g = infected(star_graph(5, weight=1.0))
        result = KEffectorsDetector(trials=5, seed=1).detect(g)
        assert result.initiators == {0}

    def test_path_source_detected(self):
        g = infected(path_graph(5, weight=1.0))
        result = KEffectorsDetector(trials=5, seed=1).detect(g)
        assert result.initiators == {0}  # only node 0 reaches everything

    def test_one_per_component(self):
        g = infected(path_graph(3, weight=1.0))
        h = path_graph(3, weight=1.0)
        for u, v, d in h.iter_edges():
            g.add_edge(f"h{u}", f"h{v}", int(d.sign), d.weight)
        for node in list(g.nodes()):
            g.set_state(node, NodeState.POSITIVE)
        result = KEffectorsDetector(trials=5, seed=1).detect(g)
        assert len(result.initiators) == 2

    def test_singleton_components_are_effectors(self):
        g = SignedDiGraph()
        g.add_node("solo", NodeState.POSITIVE)
        result = KEffectorsDetector(trials=3, seed=1).detect(g)
        assert result.initiators == {"solo"}

    def test_k_budget_respected(self):
        g = infected(path_graph(6, weight=0.5))
        result = KEffectorsDetector(budget=2, trials=5, seed=1).detect(g)
        assert 1 <= len(result.initiators) <= 2

    def test_candidate_limit_bounds_work(self):
        g = infected(path_graph(10, weight=0.5))
        result = KEffectorsDetector(
            budget=1, trials=3, candidate_limit=3, seed=1
        ).detect(g)
        assert len(result.initiators) == 1


class TestCost:
    def test_cost_zero_for_perfect_explanation(self):
        g = infected(star_graph(4, weight=1.0))
        detector = KEffectorsDetector(trials=4, seed=1)
        assert detector.cost(g, {0}, stream=0) == pytest.approx(0.0)

    def test_cost_counts_unexplained_nodes(self):
        g = infected(path_graph(4, weight=0.0))  # nothing propagates
        detector = KEffectorsDetector(trials=4, seed=1)
        # Choosing node 0 leaves nodes 1..3 unexplained.
        assert detector.cost(g, {0}, stream=0) == pytest.approx(3.0)

    def test_better_explainers_cost_less(self):
        g = infected(path_graph(4, weight=1.0))
        detector = KEffectorsDetector(trials=4, seed=1)
        assert detector.cost(g, {0}, stream=0) < detector.cost(g, {3}, stream=0)
