"""Unit tests for the runner plumbing and figure-module helpers."""

import pytest

from repro.core.rid import RID, RIDConfig
from repro.experiments import fig4
from repro.experiments.fig5 import DEFAULT_BETAS
from repro.experiments.runner import (
    DetectorEvaluation,
    aggregate_evaluations,
    evaluate_detector,
)
from repro.experiments.workload import dataset_profile
from repro.experiments.config import WorkloadConfig
from repro.experiments.workload import build_workload
from repro.metrics.identity import IdentityMetrics
from repro.metrics.state import StateMetrics


def make_evaluation(precision, recall, accuracy=None):
    state = None
    if accuracy is not None:
        state = StateMetrics(evaluated=3, accuracy=accuracy, mae=2 * (1 - accuracy), r2=0.5)
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return DetectorEvaluation(
        method="m",
        identity=IdentityMetrics(1, 1, 1, precision, recall, f1),
        state=state,
        num_detected=2,
        num_truth=2,
        seconds=0.1,
    )


class TestAggregation:
    def test_means(self):
        agg = aggregate_evaluations(
            [make_evaluation(0.4, 0.2), make_evaluation(0.6, 0.4)]
        )
        assert agg.precision == pytest.approx(0.5)
        assert agg.recall == pytest.approx(0.3)
        assert agg.trials == 2

    def test_state_metrics_require_all_trials(self):
        agg = aggregate_evaluations(
            [make_evaluation(0.5, 0.5, accuracy=1.0), make_evaluation(0.5, 0.5)]
        )
        assert agg.accuracy is None

    def test_state_metrics_averaged_when_present(self):
        agg = aggregate_evaluations(
            [
                make_evaluation(0.5, 0.5, accuracy=1.0),
                make_evaluation(0.5, 0.5, accuracy=0.5),
            ]
        )
        assert agg.accuracy == pytest.approx(0.75)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_evaluations([])


class TestEvaluateDetector:
    def test_fields_populated(self):
        workload = build_workload(WorkloadConfig(dataset="epinions", scale=0.002, seed=3))
        evaluation = evaluate_detector(RID(RIDConfig(beta=0.8)), workload)
        assert evaluation.num_truth == len(workload.seeds)
        assert evaluation.seconds > 0
        assert evaluation.state is not None  # RID infers states
        assert 0.0 <= evaluation.identity.f1 <= 1.0


class TestFigureHelpers:
    def test_fig4_lineup(self):
        factories = fig4.detector_factories()
        assert set(factories) == {"rid(0.09)", "rid(0.1)", "rid-tree", "rid-positive"}
        # Factories build fresh detectors each call.
        a, b = factories["rid-tree"](), factories["rid-tree"]()
        assert a is not b

    def test_fig4_paper_reference_methods_exist(self):
        factories = fig4.detector_factories()
        assert set(fig4.PAPER_REFERENCE) <= set(factories)

    def test_fig5_default_betas_cover_unit_interval(self):
        assert DEFAULT_BETAS[0] == 0.0
        assert DEFAULT_BETAS[-1] == 1.0
        assert list(DEFAULT_BETAS) == sorted(DEFAULT_BETAS)


class TestDatasetProfileAccessor:
    def test_known_datasets(self):
        for name in ("epinions", "slashdot", "wiki-elec"):
            profile = dataset_profile(name)
            assert profile.num_nodes > 0
            assert 0.0 < profile.positive_fraction < 1.0

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            dataset_profile("orkut")
