"""Unit tests for the general-tree -> binary-tree transform (Fig. 3)."""

import pytest

from repro.core.binarize import (
    BinaryCascadeTree,
    binarize_cascade_tree,
    find_tree_root,
)
from repro.errors import NotATreeError
from repro.graphs.generators.trees import random_general_tree
from repro.graphs.signed_digraph import SignedDiGraph
from repro.types import NodeState


def make_star(n_children: int) -> SignedDiGraph:
    g = SignedDiGraph()
    g.add_node("r", NodeState.POSITIVE)
    for i in range(n_children):
        g.add_edge("r", f"c{i}", 1, 0.4)
        g.set_state(f"c{i}", NodeState.POSITIVE)
    return g


class TestFindTreeRoot:
    def test_finds_unique_root(self, small_cascade_tree):
        assert find_tree_root(small_cascade_tree) == "r"

    def test_rejects_forest(self):
        g = SignedDiGraph()
        g.add_nodes(["a", "b"])
        with pytest.raises(NotATreeError):
            find_tree_root(g)

    def test_rejects_cycle(self):
        g = SignedDiGraph()
        g.add_edge("a", "b", 1, 0.5)
        g.add_edge("b", "a", 1, 0.5)
        with pytest.raises(NotATreeError):
            find_tree_root(g)


class TestBinarizeSmallCases:
    def test_single_node(self):
        g = SignedDiGraph()
        g.add_node("x", NodeState.NEGATIVE)
        binary = binarize_cascade_tree(g, alpha=3.0)
        assert binary.num_real == 1
        assert binary.size() == 1
        root = binary.node(binary.root)
        assert root.original == "x"
        assert root.state is NodeState.NEGATIVE
        assert root.g_in == 1.0

    def test_two_children_need_no_dummies(self):
        binary = binarize_cascade_tree(make_star(2), alpha=3.0)
        assert binary.size() == 3
        assert binary.num_real == 3
        assert not any(n.is_dummy for n in binary.nodes)

    def test_three_children_insert_dummies(self):
        binary = binarize_cascade_tree(make_star(3), alpha=3.0)
        assert binary.num_real == 4
        dummies = [n for n in binary.nodes if n.is_dummy]
        assert len(dummies) >= 1
        # Every slot respects the binary fan-out.
        for node in binary.nodes:
            children = [c for c in (node.left, node.right) if c is not None]
            assert len(children) <= 2

    def test_empty_tree_rejected(self):
        with pytest.raises(NotATreeError):
            binarize_cascade_tree(SignedDiGraph(), alpha=3.0)

    def test_multi_parent_rejected(self):
        g = SignedDiGraph()
        g.add_edge("a", "c", 1, 0.5)
        g.add_edge("b", "c", 1, 0.5)
        with pytest.raises(NotATreeError):
            binarize_cascade_tree(g, alpha=3.0)


class TestDummySemantics:
    def test_dummies_inherit_parent_state(self):
        star = make_star(5)
        star.set_state("r", NodeState.NEGATIVE)
        binary = binarize_cascade_tree(star, alpha=3.0)
        for node in binary.nodes:
            if node.is_dummy:
                assert node.state is NodeState.NEGATIVE

    def test_dummy_incoming_edges_transparent(self):
        binary = binarize_cascade_tree(make_star(7), alpha=3.0)
        for node in binary.nodes:
            if node.is_dummy:
                assert node.g_in == 1.0

    def test_real_children_keep_original_g(self):
        # r(+) -> c(+) via positive 0.4 at alpha 3 => g = min(1, 1.2) = 1.0;
        # use weight 0.2 to get a non-saturated value.
        g = SignedDiGraph()
        g.add_node("r", NodeState.POSITIVE)
        for i in range(4):
            g.add_edge("r", f"c{i}", 1, 0.2)
            g.set_state(f"c{i}", NodeState.POSITIVE)
        binary = binarize_cascade_tree(g, alpha=3.0)
        real_children = [n for n in binary.nodes if n.original and n.original != "r"]
        assert all(n.g_in == pytest.approx(0.6) for n in real_children)

    def test_root_to_node_g_product_preserved(self):
        """Binarisation must not distort path products (Fig. 3 requirement)."""
        from repro.core.tree_dp import KIsomitBTSolver

        tree = random_general_tree(25, max_children=6, rng=3)
        for node in tree.nodes():
            tree.set_state(node, NodeState.POSITIVE)
        binary = binarize_cascade_tree(tree, alpha=2.0)
        solver = KIsomitBTSolver(binary)

        # Expected: direct product of g factors along the original tree.
        from repro.core.likelihood import g_link

        def direct_product(node):
            product = 1.0
            current = node
            while True:
                parents = tree.predecessors(current)
                if not parents:
                    return product
                parent = parents[0]
                data = tree.edge(parent, current)
                product *= g_link(
                    tree.state(parent), data.sign, tree.state(current), data.weight, 2.0
                )
                current = parent

        by_original = {n.original: n.uid for n in binary.nodes if not n.is_dummy}
        root_uid = by_original[0]
        for node in tree.nodes():
            expected = direct_product(node)
            actual = solver.path_product(root_uid, by_original[node])
            assert actual == pytest.approx(expected)


class TestStructuralInvariants:
    @pytest.mark.parametrize("size,max_children", [(1, 3), (5, 4), (30, 8), (60, 3)])
    def test_real_node_count_preserved(self, size, max_children):
        tree = random_general_tree(size, max_children=max_children, rng=size)
        for node in tree.nodes():
            tree.set_state(node, NodeState.POSITIVE)
        binary = binarize_cascade_tree(tree, alpha=3.0)
        assert binary.num_real == size
        assert len(binary.real_nodes()) == size

    def test_parent_child_links_consistent(self):
        tree = random_general_tree(40, max_children=6, rng=11)
        for node in tree.nodes():
            tree.set_state(node, NodeState.POSITIVE)
        binary = binarize_cascade_tree(tree, alpha=3.0)
        for node in binary.nodes:
            for child in (node.left, node.right):
                if child is not None:
                    assert binary.node(child).parent == node.uid

    def test_depth_reasonable(self):
        binary = binarize_cascade_tree(make_star(16), alpha=3.0)
        # 16 children fan out through ceil(log2(16)) = 4 dummy levels max.
        assert binary.depth() <= 2 + 5
