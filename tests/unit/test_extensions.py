"""Unit tests for the classic source-detection extensions."""

import math

import pytest

from repro.errors import NotATreeError
from repro.extensions.centrality_detectors import (
    DistanceCenterDetector,
    JordanCenterDetector,
    RumorCentralityDetector,
    undirected_distances,
)
from repro.extensions.rumor_centrality import bfs_tree, rumor_centralities
from repro.graphs.generators.trees import path_graph, star_graph
from repro.graphs.signed_digraph import SignedDiGraph
from repro.types import NodeState


class TestRumorCentralities:
    def test_star_center_is_hub(self):
        star = star_graph(6)
        scores = rumor_centralities(star)
        assert max(scores, key=scores.get) == 0

    def test_path_center_is_middle(self):
        path = path_graph(5)
        scores = rumor_centralities(path)
        assert max(scores, key=scores.get) == 2

    def test_brute_force_match_on_small_tree(self):
        # R(v) = n! * prod 1/t_u^v; verify message passing against direct
        # computation on a 4-node path.
        path = path_graph(4)
        scores = rumor_centralities(path)

        def direct(root):
            # Subtree sizes when rooted at `root` (undirected path 0-1-2-3).
            adj = {0: [1], 1: [0, 2], 2: [1, 3], 3: [2]}
            sizes = {}

            def dfs(u, parent):
                size = 1
                for w in adj[u]:
                    if w != parent:
                        size += dfs(w, u)
                sizes[u] = size
                return size

            dfs(root, None)
            value = math.lgamma(5)  # log 4!
            for u in range(4):
                value -= math.log(sizes[u])
            return value

        for node in range(4):
            assert scores[node] == pytest.approx(direct(node))

    def test_two_node_symmetric(self):
        scores = rumor_centralities(path_graph(2))
        assert scores[0] == pytest.approx(scores[1])

    def test_rejects_non_tree(self):
        g = path_graph(3)
        g.add_edge(2, 0, 1, 1.0)
        with pytest.raises(NotATreeError):
            rumor_centralities(g)

    def test_rejects_disconnected(self):
        g = SignedDiGraph()
        g.add_edge(0, 1, 1, 1.0)
        g.add_nodes([5])
        with pytest.raises(NotATreeError):
            rumor_centralities(g)

    def test_rejects_empty(self):
        with pytest.raises(NotATreeError):
            rumor_centralities(SignedDiGraph())


class TestBfsTree:
    def test_spans_component(self):
        g = SignedDiGraph()
        g.add_edge("a", "b", 1, 0.5)
        g.add_edge("b", "c", -1, 0.5)
        g.add_edge("c", "a", 1, 0.5)
        tree = bfs_tree(g, "a")
        assert tree.number_of_nodes() == 3
        assert tree.number_of_edges() == 2
        assert tree.in_degree("a") == 0


class TestUndirectedDistances:
    def test_hop_counts(self):
        path = path_graph(4)
        distances = undirected_distances(path, 0)
        assert distances == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_direction_ignored(self):
        g = SignedDiGraph()
        g.add_edge("b", "a", 1, 0.5)  # edge points INTO a
        assert undirected_distances(g, "a") == {"a": 0, "b": 1}


def infected_path(n: int) -> SignedDiGraph:
    g = path_graph(n)
    for node in g.nodes():
        g.set_state(node, NodeState.POSITIVE)
    return g


class TestCentralityDetectors:
    def test_jordan_center_of_path(self):
        result = JordanCenterDetector().detect(infected_path(5))
        assert result.initiators == {2}

    def test_distance_center_of_path(self):
        result = DistanceCenterDetector().detect(infected_path(5))
        assert result.initiators == {2}

    def test_rumor_center_of_path(self):
        result = RumorCentralityDetector().detect(infected_path(5))
        assert result.initiators == {2}

    def test_one_detection_per_component(self):
        g = infected_path(3)
        h = infected_path(3)
        merged = SignedDiGraph()
        for u, v, d in g.iter_edges():
            merged.add_edge(f"g{u}", f"g{v}", int(d.sign), d.weight)
        for u, v, d in h.iter_edges():
            merged.add_edge(f"h{u}", f"h{v}", int(d.sign), d.weight)
        for node in merged.nodes():
            merged.set_state(node, NodeState.POSITIVE)
        result = JordanCenterDetector().detect(merged)
        assert len(result.initiators) == 2

    def test_singleton_component(self):
        g = SignedDiGraph()
        g.add_node("only", NodeState.POSITIVE)
        result = RumorCentralityDetector().detect(g)
        assert result.initiators == {"only"}

    def test_no_states_inferred(self):
        result = JordanCenterDetector().detect(infected_path(3))
        assert result.states == {}
