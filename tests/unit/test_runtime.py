"""Unit tests for the parallel trial-execution runtime."""

import json

import pytest

from repro.diffusion.base import ActivationEvent, DiffusionResult
from repro.diffusion.mfc import MFCModel
from repro.errors import ConfigError
from repro.graphs.signed_digraph import SignedDiGraph
from repro.runtime import (
    CacheCodecError,
    RuntimeConfig,
    TrialCache,
    decode_diffusion_result,
    encode_diffusion_result,
    graph_digest,
    model_digest,
    run_trials,
    seeds_digest,
    stable_digest,
)
from repro.types import NodeState
from repro.utils.rng import spawn_rng


def draw_trial(payload, trial):
    """A module-level (hence picklable) trial body with real randomness."""
    base_seed, digits = payload
    rng = spawn_rng(base_seed + trial, "draw")
    return round(rng.random(), digits)


def identity_trial(payload, spec):
    return (payload, spec)


def ring(n: int = 20) -> SignedDiGraph:
    g = SignedDiGraph()
    for i in range(n):
        g.add_edge(i, (i + 1) % n, 1 if i % 3 else -1, 0.5)
    return g


class TestRuntimeConfig:
    def test_defaults_serial(self):
        config = RuntimeConfig()
        config.validate()
        assert not config.parallel

    def test_workers_below_one_rejected(self):
        with pytest.raises(ConfigError):
            RuntimeConfig(workers=0).validate()

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ConfigError):
            RuntimeConfig(chunk_size=0).validate()

    def test_explicit_chunk_size_wins(self):
        assert RuntimeConfig(workers=4, chunk_size=3).resolve_chunk_size(100) == 3

    def test_auto_chunk_size_targets_four_chunks_per_worker(self):
        assert RuntimeConfig(workers=4).resolve_chunk_size(100) == 7

    def test_serial_chunk_size_is_everything(self):
        assert RuntimeConfig(workers=1).resolve_chunk_size(100) == 100


class TestRunTrials:
    def test_serial_results_in_spec_order(self):
        outcome = run_trials(identity_trial, "p", ["a", "b", "c"])
        assert outcome.results == [("p", "a"), ("p", "b"), ("p", "c")]
        assert outcome.report.fallback_reason == "workers=1"

    def test_parallel_bit_identical_to_serial(self):
        serial = run_trials(draw_trial, (7, 9), range(12))
        parallel = run_trials(
            draw_trial, (7, 9), range(12), config=RuntimeConfig(workers=3)
        )
        assert parallel.results == serial.results
        assert parallel.report.fallback_reason is None
        assert parallel.report.workers > 1

    def test_chunking_counts(self):
        outcome = run_trials(
            draw_trial,
            (1, 3),
            range(5),
            config=RuntimeConfig(workers=2, chunk_size=2),
        )
        assert outcome.report.chunks == 3

    def test_non_picklable_falls_back_to_serial(self):
        expected = [(None, s) for s in range(4)]
        outcome = run_trials(
            lambda payload, spec: (payload, spec),
            None,
            range(4),
            config=RuntimeConfig(workers=4),
        )
        assert outcome.results == expected
        assert outcome.report.fallback_reason == "inputs not picklable"

    def test_single_trial_stays_in_process(self):
        outcome = run_trials(
            draw_trial, (1, 3), [0], config=RuntimeConfig(workers=4)
        )
        assert outcome.report.fallback_reason == "single trial"

    def test_timings_cover_every_trial(self):
        outcome = run_trials(draw_trial, (1, 3), range(6))
        assert len(outcome.report.timings) == 6
        assert all(t.seconds >= 0.0 for t in outcome.report.timings)
        assert not any(t.cached for t in outcome.report.timings)
        assert outcome.report.compute_seconds >= 0.0


class TestTrialCache:
    def test_round_trip(self, tmp_path):
        cache = TrialCache(tmp_path)
        cache.store("k1", {"x": [1, 2]})
        assert cache.load("k1") == {"x": [1, 2]}
        assert "k1" in cache
        assert len(cache) == 1

    def test_miss_returns_none(self, tmp_path):
        assert TrialCache(tmp_path).load("absent") is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = TrialCache(tmp_path)
        (tmp_path / "bad.json").write_text("{not json")
        assert cache.load("bad") is None

    def test_run_trials_uses_cache(self, tmp_path):
        cache = TrialCache(tmp_path)
        key_fn = lambda spec: stable_digest("t", spec)  # noqa: E731
        kwargs = dict(
            cache=cache,
            key_fn=key_fn,
            encode=lambda value: {"v": value},
            decode=lambda payload: payload["v"],
        )
        first = run_trials(draw_trial, (3, 6), range(5), **kwargs)
        second = run_trials(draw_trial, (3, 6), range(5), **kwargs)
        assert first.report.cache_hits == 0
        assert second.report.cache_hits == 5
        assert second.results == first.results
        assert all(t.cached for t in second.report.timings)

    def test_codec_error_skips_caching(self, tmp_path):
        cache = TrialCache(tmp_path)

        def refuse(value):
            raise CacheCodecError("nope")

        outcome = run_trials(
            draw_trial,
            (3, 6),
            range(3),
            cache=cache,
            key_fn=lambda spec: stable_digest("t", spec),
            encode=refuse,
            decode=lambda payload: payload,
        )
        assert len(outcome.results) == 3
        assert len(cache) == 0


class TestDigests:
    def test_graph_digest_stable_across_copies(self):
        g = ring()
        assert graph_digest(g) == graph_digest(g.copy())

    def test_graph_digest_sees_weights(self):
        g, h = ring(), ring()
        h.set_weight(0, 1, 0.51)
        assert graph_digest(g) != graph_digest(h)

    def test_graph_digest_sees_states(self):
        g, h = ring(), ring()
        h.set_state(0, NodeState.POSITIVE)
        assert graph_digest(g) != graph_digest(h)

    def test_model_digest_sees_parameters(self):
        assert model_digest(MFCModel(alpha=2.0)) != model_digest(MFCModel(alpha=3.0))

    def test_seeds_digest_order_independent(self):
        a = {1: NodeState.POSITIVE, 2: NodeState.NEGATIVE}
        b = {2: NodeState.NEGATIVE, 1: NodeState.POSITIVE}
        assert seeds_digest(a) == seeds_digest(b)


class TestDiffusionResultCodec:
    def test_round_trip(self):
        model = MFCModel(alpha=2.0)
        result = model.run(ring(), {0: NodeState.POSITIVE, 5: NodeState.NEGATIVE}, rng=3)
        payload = encode_diffusion_result(result)
        json.dumps(payload)  # genuinely JSON-serialisable
        decoded = decode_diffusion_result(payload)
        assert decoded.seeds == result.seeds
        assert decoded.final_states == result.final_states
        assert decoded.events == result.events
        assert decoded.rounds == result.rounds

    def test_string_nodes_round_trip(self):
        result = DiffusionResult(
            seeds={"a": NodeState.POSITIVE},
            final_states={"a": NodeState.POSITIVE, "b": NodeState.NEGATIVE},
            events=[
                ActivationEvent(round=0, source=None, target="a", state=NodeState.POSITIVE),
                ActivationEvent(
                    round=1, source="a", target="b", state=NodeState.NEGATIVE, was_flip=True
                ),
            ],
            rounds=1,
        )
        decoded = decode_diffusion_result(encode_diffusion_result(result))
        assert decoded == result

    def test_exotic_nodes_rejected(self):
        result = DiffusionResult(
            seeds={("tuple", "node"): NodeState.POSITIVE},
            final_states={("tuple", "node"): NodeState.POSITIVE},
        )
        with pytest.raises(CacheCodecError):
            encode_diffusion_result(result)

    def test_bool_nodes_rejected(self):
        # bool is an int subclass; a silent int round-trip would change
        # the node's identity, so the codec must refuse it.
        result = DiffusionResult(
            seeds={True: NodeState.POSITIVE},
            final_states={True: NodeState.POSITIVE},
        )
        with pytest.raises(CacheCodecError):
            encode_diffusion_result(result)
