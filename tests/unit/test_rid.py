"""Unit tests for the RID pipeline and its baselines."""

import pytest

from repro.core.baselines import RIDPositiveDetector, RIDTreeDetector
from repro.core.rid import RID, RIDConfig
from repro.errors import ConfigError
from repro.graphs.signed_digraph import SignedDiGraph
from repro.types import NodeState


def hand_built_infection() -> SignedDiGraph:
    """A planted cascade with one embedded second initiator.

    Cascade A (rooted at r1): r1(+) -> a(+) -> b(+), all strong positive
    consistent links (boost-saturated, g = 1). The second initiator r2 is
    embedded under b via a *weak* consistent negative link (b -> r2,
    weight 0.02), so r2 is not a forest root but is discoverable by the
    DP: splitting there gains 1 - 0.02 = 0.98, which beats β = 0.1 and
    loses to β = 1.0.
    """
    g = SignedDiGraph()
    g.add_edge("r1", "a", 1, 0.9)
    g.add_edge("a", "b", 1, 0.9)
    g.add_edge("b", "r2", -1, 0.02)  # weak, consistent (+ * -1 = -)
    g.set_states(
        {
            "r1": NodeState.POSITIVE,
            "a": NodeState.POSITIVE,
            "b": NodeState.POSITIVE,
            "r2": NodeState.NEGATIVE,
        }
    )
    return g


class TestRIDConfig:
    def test_defaults_valid(self):
        RIDConfig().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 0.5},
            {"beta": -0.1},
            {"score": "nope"},
            {"k_strategy": "nope"},
            {"max_k_per_tree": 0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            RID(RIDConfig(**kwargs))


class TestRIDDetection:
    def test_single_tree_root_detected(self, small_cascade_tree):
        result = RID(RIDConfig(beta=1.0)).detect(small_cascade_tree)
        assert "r" in result.initiators
        assert result.states["r"] is NodeState.POSITIVE

    def test_embedded_initiator_found_at_low_beta(self):
        infected = hand_built_infection()
        result = RID(RIDConfig(beta=0.1)).detect(infected)
        assert "r1" in result.initiators
        assert "r2" in result.initiators
        assert result.states["r2"] is NodeState.NEGATIVE

    def test_high_beta_keeps_tree_whole(self):
        infected = hand_built_infection()
        result = RID(RIDConfig(beta=1.0)).detect(infected)
        # Penalty 1.0 exceeds the 0.98 gain of splitting at r2.
        assert result.initiators == {"r1"}

    def test_beta_monotone_in_detections(self):
        infected = hand_built_infection()
        low = RID(RIDConfig(beta=0.0)).detect(infected)
        high = RID(RIDConfig(beta=1.0)).detect(infected)
        assert len(low.initiators) >= len(high.initiators)

    def test_exhaustive_at_least_as_good_as_greedy(self):
        infected = hand_built_infection()
        greedy = RID(RIDConfig(beta=0.3, k_strategy="greedy")).detect(infected)
        exhaustive = RID(RIDConfig(beta=0.3, k_strategy="exhaustive")).detect(infected)
        assert exhaustive.objective >= greedy.objective - 1e-12

    def test_max_k_per_tree_caps_detections(self):
        infected = hand_built_infection()
        result = RID(RIDConfig(beta=0.0, max_k_per_tree=1)).detect(infected)
        assert len(result.initiators) <= 1 * len(result.trees)

    def test_selections_diagnostics_populated(self):
        detector = RID(RIDConfig(beta=0.1))
        detector.detect(hand_built_infection())
        assert detector.last_selections
        assert all(s.k >= 1 for s in detector.last_selections)

    def test_states_cover_all_initiators(self):
        result = RID(RIDConfig(beta=0.1)).detect(hand_built_infection())
        assert set(result.states) == result.initiators

    def test_to_dict_is_json_ready(self):
        import json

        result = RID(RIDConfig(beta=0.1)).detect(hand_built_infection())
        payload = result.to_dict()
        encoded = json.dumps(payload)
        assert "rid" in encoded
        assert payload["num_trees"] == len(result.trees)
        assert sum(payload["tree_sizes"]) == sum(
            t.number_of_nodes() for t in result.trees
        )


class TestRIDTreeDetector:
    def test_roots_are_in_degree_zero_nodes(self):
        infected = hand_built_infection()
        result = RIDTreeDetector().detect(infected)
        assert result.initiators == {"r1"}

    def test_no_states_inferred(self):
        result = RIDTreeDetector().detect(hand_built_infection())
        assert result.states == {}

    def test_pruned_variant_splits_at_inconsistencies(self):
        infected = hand_built_infection()
        # Make the b -> r2 link inconsistent so pruning severs it.
        infected.set_state("r2", NodeState.POSITIVE)
        pruned = RIDTreeDetector(prune_inconsistent=True).detect(infected)
        assert pruned.initiators == {"r1", "r2"}


class TestRIDPositiveDetector:
    def test_negative_links_discarded(self):
        infected = hand_built_infection()
        result = RIDPositiveDetector().detect(infected)
        # Dropping b -> r2 (negative) makes r2 a root as well.
        assert result.initiators == {"r1", "r2"}

    def test_detects_more_or_equal_roots_than_tree(self):
        infected = hand_built_infection()
        tree = RIDTreeDetector().detect(infected)
        positive = RIDPositiveDetector().detect(infected)
        assert len(positive.initiators) >= len(tree.initiators)


class TestGreedyKSearchTies:
    """Pin the greedy scan's behaviour when the penalised objective ties.

    The paper heuristic stops at the first k that *fails to improve* the
    penalised objective. An equal objective at k+1 is not an improvement,
    so greedy must stop there — even when a strictly better k hides
    beyond the tie. These tests drive a stubbed DP with a controlled
    score curve to make the tie exact.
    """

    #: score curve: objective(k) = score - (k-1)*beta with beta = 0.1
    #: k=1 -> 1.0, k=2 -> 1.0 (exact tie), k=3 -> 1.8 (hidden optimum).
    SCORES = {1: 1.0, 2: 1.1, 3: 2.0}

    def _stub_dp(self, monkeypatch):
        import repro.core.rid as rid_module
        from repro.core.tree_dp import TreeDPResult

        scores = self.SCORES

        class StubBinary:
            num_real = 3

        class StubSolver:
            def __init__(self, binary):
                self.binary = binary

            def solve(self, k):
                return TreeDPResult(
                    k=k,
                    score=scores[k],
                    initiators={f"n{i}": NodeState.POSITIVE for i in range(k)},
                )

        monkeypatch.setattr(
            rid_module, "binarize_cascade_tree", lambda tree, alpha, inconsistent_value=0.0: StubBinary()
        )
        monkeypatch.setattr(rid_module, "KIsomitBTSolver", StubSolver)

    def test_tie_at_k_plus_one_stops_greedy(self, monkeypatch):
        self._stub_dp(monkeypatch)
        detector = RID(RIDConfig(beta=0.1, k_strategy="greedy"))
        selection = detector.select_initiators_for_tree(SignedDiGraph())
        # k=2 ties k=1 (1.0 == 1.0): not an improvement, scan stops.
        assert selection.k == 1
        assert selection.scanned_k == 2
        assert selection.penalized_objective == pytest.approx(1.0)

    def test_exhaustive_scans_past_the_tie(self, monkeypatch):
        self._stub_dp(monkeypatch)
        detector = RID(RIDConfig(beta=0.1, k_strategy="exhaustive"))
        selection = detector.select_initiators_for_tree(SignedDiGraph())
        # Exhaustive reaches the hidden optimum at k=3.
        assert selection.k == 3
        assert selection.scanned_k == 3
        assert selection.penalized_objective == pytest.approx(1.8)

    def test_greedy_vs_exhaustive_disagreement_is_the_tie_cost(self, monkeypatch):
        self._stub_dp(monkeypatch)
        greedy = RID(RIDConfig(beta=0.1, k_strategy="greedy")).select_initiators_for_tree(
            SignedDiGraph()
        )
        exhaustive = RID(
            RIDConfig(beta=0.1, k_strategy="exhaustive")
        ).select_initiators_for_tree(SignedDiGraph())
        assert exhaustive.penalized_objective > greedy.penalized_objective
        assert greedy.k < exhaustive.k
