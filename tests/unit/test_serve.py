"""Unit tests for the serve worker pool: affinity, admission, batching.

Socket-free — these drive :class:`repro.serve.pool.WorkerPool` directly
(the HTTP layer is covered by ``tests/integration/test_serve_identity``).
Controlled-latency handlers are injected through the HANDLERS registry
so queue pressure and coalescing windows are deterministic, not
timing-dependent.
"""

import threading
import time

import pytest

from repro.core.rid import RIDConfig
from repro.errors import ConfigError, ServerOverloadedError, WireFormatError
from repro.serve import wire
from repro.serve.pool import HANDLERS, WorkerPool
from repro.serve.server import ServeConfig
from repro.stream.synthetic import synthetic_snapshot


@pytest.fixture
def pool():
    p = WorkerPool(2, queue_size=4, batch_max=4)
    yield p
    p.shutdown()


@pytest.fixture
def blockable(monkeypatch):
    """Register a handler that blocks until released; returns the gate."""
    gate = threading.Event()

    def _blocked(host, payload):
        gate.wait(timeout=10.0)
        return {"echo": payload.get("x"), "worker": host.index}

    monkeypatch.setitem(HANDLERS, "test.block", _blocked)
    return gate


class TestShardAffinity:
    def test_shard_is_stable_and_in_range(self, pool):
        for key in ("a", "b", "session:s1", wire.payload_digest({"g": 1})):
            first = pool.shard(key)
            assert first == pool.shard(key)
            assert 0 <= first < pool.workers

    def test_same_graph_lands_on_same_worker(self, pool):
        from repro.pipeline.cache import encode_graph

        payload = {"graph": encode_graph(synthetic_snapshot(2, 6, seed=1))}
        digest = wire.payload_digest(payload)
        workers = set()
        for _ in range(3):
            index, future = pool.submit("detect", payload, digest)
            future.result(timeout=30.0)
            workers.add(index)
        assert len(workers) == 1


class TestAdmissionControl:
    def test_full_queue_sheds_with_retry_after(self, blockable):
        pool = WorkerPool(1, queue_size=2, batch_max=1, retry_after=2.0)
        try:
            _, running = pool.submit("test.block", {"x": 0}, "key")
            deadline = time.monotonic() + 5.0
            while pool.queue_depth() > 0 and time.monotonic() < deadline:
                time.sleep(0.005)  # worker picks up the blocker
            for i in (1, 2):  # fill the bounded queue
                pool.submit("test.block", {"x": i}, "key")
            with pytest.raises(ServerOverloadedError) as info:
                pool.submit("test.block", {"x": 3}, "key")
            assert info.value.retry_after == 2.0
            assert pool.control.metrics.counters["serve.shed"] == 1.0
            blockable.set()
            assert running.result(timeout=10.0)["echo"] == 0
        finally:
            blockable.set()
            pool.shutdown()

    def test_submit_after_shutdown_sheds(self, pool):
        pool.shutdown()
        with pytest.raises(ServerOverloadedError, match="shutting down"):
            pool.submit("detect", {}, "key")


class TestCoalescing:
    def test_identical_requests_compute_once(self, blockable, monkeypatch):
        calls = []

        def _counting(host, payload):
            calls.append(payload["x"])
            blockable.wait(timeout=10.0)
            return {"echo": payload["x"]}

        monkeypatch.setitem(HANDLERS, "test.count", _counting)
        pool = WorkerPool(1, queue_size=16, batch_max=8)
        try:
            # The first request occupies the worker; the rest queue up
            # and arrive in one batch where the duplicates coalesce.
            _, first = pool.submit("test.block", {"x": "warm"}, "key")
            time.sleep(0.05)
            futures = [
                pool.submit("test.count", {"x": 9}, "key", coalesce="same")[1]
                for _ in range(4)
            ]
            blockable.set()
            results = [f.result(timeout=10.0) for f in futures]
            assert first.result(timeout=10.0)["echo"] == "warm"
            assert all(r == {"echo": 9} for r in results)
            assert len(calls) == 1
            merged = pool.metrics()
            assert merged.counters["serve.coalesced"] == 3.0
        finally:
            pool.shutdown()

    def test_uncoalesced_requests_each_compute(self, pool):
        from repro.pipeline.cache import encode_graph

        payload = {"graph": encode_graph(synthetic_snapshot(2, 6, seed=1))}
        digest = wire.payload_digest(payload)
        futures = [
            pool.submit("detect", payload, digest, coalesce=None)[1] for _ in range(3)
        ]
        results = [f.result(timeout=30.0) for f in futures]
        assert len({id(r) for r in results}) == 3


class TestAbandonedRequests:
    def test_cancelled_future_is_skipped_not_computed(self, blockable, monkeypatch):
        computed = []

        def _tracking(host, payload):
            computed.append(payload["x"])
            return {"echo": payload["x"]}

        monkeypatch.setitem(HANDLERS, "test.track", _tracking)
        pool = WorkerPool(1, queue_size=8, batch_max=1)
        try:
            _, first = pool.submit("test.block", {"x": 0}, "key")
            time.sleep(0.05)
            _, doomed = pool.submit("test.track", {"x": "doomed"}, "key")
            _, kept = pool.submit("test.track", {"x": "kept"}, "key")
            assert doomed.cancel()  # the server's timeout path
            blockable.set()
            assert kept.result(timeout=10.0)["echo"] == "kept"
            assert computed == ["kept"]
            assert pool.metrics().counters["serve.abandoned"] == 1.0
        finally:
            blockable.set()
            pool.shutdown()


class TestWarmCaches:
    def test_graph_and_engine_go_hot_on_second_request(self, pool):
        from repro.pipeline.cache import encode_graph

        payload = {"graph": encode_graph(synthetic_snapshot(3, 8, seed=2))}
        digest = wire.payload_digest(payload)
        _, cold = pool.submit("detect", payload, digest)
        first = cold.result(timeout=30.0)
        assert first["cache"]["graph"] == "cold"
        assert first["cache"]["engine"] == "cold"
        assert first["cache"]["computed_artifacts"] > 0
        _, warm = pool.submit("detect", payload, digest)
        second = warm.result(timeout=30.0)
        assert second["cache"]["graph"] == "hot"
        assert second["cache"]["engine"] == "hot"
        assert second["cache"]["computed_artifacts"] == 0
        assert second["cache"]["reused_artifacts"] == first["cache"]["computed_artifacts"]
        assert second["result"] == first["result"]

    def test_engine_cache_is_lru_bounded(self):
        pool = WorkerPool(1, queue_size=16, engine_cache=1)
        try:
            from repro.pipeline.cache import encode_graph

            payload = {"graph": encode_graph(synthetic_snapshot(2, 6, seed=3))}
            digest = wire.payload_digest(payload)
            for beta in (0.1, 0.2, 0.1):  # 0.1's detector evicted by 0.2
                body = dict(payload, config={"beta": beta})
                _, fut = pool.submit("detect", body, digest)
                fut.result(timeout=30.0)
            counters = pool.metrics().counters
            assert counters["serve.engine_cache.misses"] == 3.0
        finally:
            pool.shutdown()


class TestErrorsTravelThroughFutures:
    def test_handler_error_resolves_the_future(self, pool):
        _, fut = pool.submit("detect", {"graph": "nope"}, "key")
        with pytest.raises(WireFormatError):
            fut.result(timeout=10.0)
        assert pool.metrics().counters["serve.errors"] == 1.0

    def test_unknown_kind_is_a_wire_error(self, pool):
        _, fut = pool.submit("test.nope", {}, "key")
        with pytest.raises(WireFormatError, match="unknown request kind"):
            fut.result(timeout=10.0)


class TestDrain:
    def test_drain_waits_for_inflight_work(self, blockable):
        pool = WorkerPool(1, queue_size=4, batch_max=1)
        try:
            _, fut = pool.submit("test.block", {"x": 1}, "key")
            assert not pool.drain(timeout=0.1)
            blockable.set()
            assert pool.drain(timeout=10.0)
            assert fut.done()
            assert pool.inflight() == 0
        finally:
            blockable.set()
            pool.shutdown()


class TestMetricsMerge:
    def test_worker_metrics_fold_into_one_snapshot(self, pool):
        from repro.pipeline.cache import encode_graph

        for seed in (1, 2, 3):
            payload = {"graph": encode_graph(synthetic_snapshot(2, 6, seed=seed))}
            digest = wire.payload_digest(payload)
            _, fut = pool.submit("detect", payload, digest)
            fut.result(timeout=30.0)
        merged = pool.metrics()
        assert merged.counters["serve.requests"] == 3.0
        assert merged.counters["serve.enqueued"] == 3.0
        assert "serve.queue_wait" in merged.timers
        assert "rid.trees" in merged.counters  # pipeline counters flow too


class TestServeConfigValidation:
    @pytest.mark.parametrize(
        "kwargs, message",
        [
            ({"workers": 0}, "workers must be >= 1"),
            ({"queue_size": 0}, "queue_size must be >= 1"),
            ({"batch_max": 0}, "batch_max must be >= 1"),
            ({"timeout": 0.0}, "timeout must be > 0"),
            ({"max_body": 10}, "max_body must be >= 1024"),
        ],
    )
    def test_out_of_range_settings(self, kwargs, message):
        with pytest.raises(ConfigError, match=message):
            ServeConfig(**kwargs).validate()

    def test_defaults_validate(self):
        ServeConfig().validate()


class TestSessionHandlers:
    def test_session_lifecycle_on_one_worker(self, pool):
        from repro.pipeline.cache import encode_graph
        from repro.stream.synthetic import synthetic_stream

        snapshot, deltas = synthetic_stream(components=3, size=8, deltas=2, seed=5)
        key = "session:lifecycle"
        create = {"session": "lifecycle", "graph": encode_graph(snapshot)}
        _, fut = pool.submit("session.create", create, key)
        info = fut.result(timeout=30.0)
        assert info["components"] >= 1
        for delta in deltas:
            body = {"session": "lifecycle", "delta": delta.to_json()}
            _, fut = pool.submit("session.delta", body, key)
            step = fut.result(timeout=30.0)
            assert step["result"]["format"] == "repro.detection-result/v1"
            assert step["report"]["total_components"] >= 1
        assert pool.session_count() == 1
        _, fut = pool.submit("session.close", {"session": "lifecycle"}, key)
        assert fut.result(timeout=30.0)["closed"] is True
        assert pool.session_count() == 0

    def test_duplicate_and_missing_sessions(self, pool):
        from repro.errors import SessionExistsError, SessionNotFoundError
        from repro.pipeline.cache import encode_graph

        snapshot = synthetic_snapshot(2, 6, seed=6)
        key = "session:dup"
        create = {"session": "dup", "graph": encode_graph(snapshot)}
        pool.submit("session.create", create, key)[1].result(timeout=30.0)
        _, fut = pool.submit("session.create", create, key)
        with pytest.raises(SessionExistsError):
            fut.result(timeout=30.0)
        _, fut = pool.submit("session.delta", {"session": "ghost", "delta": {}}, key)
        with pytest.raises(SessionNotFoundError):
            fut.result(timeout=30.0)


class TestConfigOnTheWireMatters:
    def test_config_changes_the_detector(self, pool):
        from repro.pipeline.cache import encode_graph

        payload = {"graph": encode_graph(synthetic_snapshot(3, 10, seed=7))}
        digest = wire.payload_digest(payload)
        default = pool.submit("detect", payload, digest)[1].result(timeout=30.0)
        heavy = dict(payload, config=wire.config_to_json(RIDConfig(beta=5.0)))
        penalised = pool.submit("detect", heavy, digest)[1].result(timeout=30.0)
        assert len(penalised["result"]["initiators"]) <= len(
            default["result"]["initiators"]
        )


class TestNamedDetectorRouting:
    def _detect(self, pool, payload):
        digest = wire.payload_digest(payload)
        return pool.submit("detect", payload, digest)[1].result(timeout=30.0)

    def test_default_detector_is_rid(self, pool):
        from repro.pipeline.cache import encode_graph

        payload = {"graph": encode_graph(synthetic_snapshot(2, 8, seed=8))}
        body = self._detect(pool, payload)
        assert body["detector"] == "rid"
        assert body["result"]["method"].startswith("rid")

    def test_named_detector_travels(self, pool):
        from repro.pipeline.cache import encode_graph

        payload = {
            "graph": encode_graph(synthetic_snapshot(2, 8, seed=8)),
            "detector": "jordan-center",
        }
        body = self._detect(pool, payload)
        assert body["detector"] == "jordan_center"
        assert body["result"]["method"] == "jordan-center"
        assert pool.metrics().counters["detector.jordan_center.requests"] == 1.0

    def test_tier_routing(self, pool):
        from repro.detectors.registry import TIER_ROUTING
        from repro.pipeline.cache import encode_graph

        graph = encode_graph(synthetic_snapshot(2, 8, seed=8))
        fast = self._detect(pool, {"graph": graph, "tier": "fast"})
        assert fast["detector"] == TIER_ROUTING["fast"]
        accurate = self._detect(pool, {"graph": graph, "tier": "accurate"})
        assert accurate["detector"] == TIER_ROUTING["accurate"]

    def test_detector_and_tier_conflict(self, pool):
        from repro.pipeline.cache import encode_graph

        payload = {
            "graph": encode_graph(synthetic_snapshot(2, 6, seed=8)),
            "detector": "rid",
            "tier": "fast",
        }
        _, fut = pool.submit("detect", payload, wire.payload_digest(payload))
        with pytest.raises(ConfigError, match="mutually exclusive"):
            fut.result(timeout=30.0)

    def test_unknown_tier_and_detector(self, pool):
        from repro.pipeline.cache import encode_graph

        graph = encode_graph(synthetic_snapshot(2, 6, seed=8))
        _, fut = pool.submit("detect", {"graph": graph, "tier": "turbo"}, "k1")
        with pytest.raises(ConfigError, match="unknown tier"):
            fut.result(timeout=30.0)
        _, fut = pool.submit("detect", {"graph": graph, "detector": "louvain"}, "k2")
        with pytest.raises(ConfigError, match="unknown detector"):
            fut.result(timeout=30.0)

    def test_named_config_separates_warm_instances(self, pool):
        from repro.pipeline.cache import encode_graph

        graph = encode_graph(synthetic_snapshot(2, 8, seed=9))
        base = {"graph": graph, "detector": "map_suspect", "config": {"trials": 2}}
        self._detect(pool, base)
        warm = self._detect(pool, base)
        assert warm["cache"]["engine"] == "hot"
        other = dict(base, config={"trials": 3})
        cold = self._detect(pool, other)
        assert cold["cache"]["engine"] == "cold"

    def test_session_accepts_named_detector(self, pool):
        from repro.pipeline.cache import encode_graph

        snapshot = synthetic_snapshot(2, 6, seed=10)
        key = "session:named"
        create = {
            "session": "named",
            "graph": encode_graph(snapshot),
            "detector": "distance_center",
        }
        info = pool.submit("session.create", create, key)[1].result(timeout=30.0)
        assert info["detector"] == "distance_center"


class TestCacheTTL:
    """Satellite: idle entries expire lazily, hits refresh the clock."""

    def host(self, ttl):
        from repro.serve.pool import WorkerHost

        clock = {"now": 100.0}
        host = WorkerHost(0, 8, cache_ttl_s=ttl, clock=lambda: clock["now"])
        return host, clock

    def graph_payload(self):
        from repro.pipeline.cache import encode_graph

        payload = encode_graph(synthetic_snapshot(2, 6, seed=11))
        return wire.payload_digest({"graph": payload}), payload

    def test_idle_graph_expires(self):
        host, clock = self.host(ttl=10.0)
        key, payload = self.graph_payload()
        _, hot = host.graph(key, payload)
        assert hot is False
        clock["now"] += 11.0
        _, hot = host.graph(key, payload)
        assert hot is False  # expired, rebuilt cold
        assert host.recorder.metrics.counters["serve.cache_expired"] == 1.0

    def test_hit_refreshes_the_idle_clock(self):
        host, clock = self.host(ttl=10.0)
        key, payload = self.graph_payload()
        host.graph(key, payload)
        for _ in range(3):
            clock["now"] += 6.0  # each hit inside the ttl window
            _, hot = host.graph(key, payload)
            assert hot is True
        assert "serve.cache_expired" not in host.recorder.metrics.counters

    def test_idle_detector_expires_and_rebuilds(self):
        host, clock = self.host(ttl=5.0)
        _, hot = host.detector("jordan_center", None)
        assert hot is False
        clock["now"] += 2.0
        _, hot = host.detector("jordan_center", None)
        assert hot is True
        clock["now"] += 6.0
        _, hot = host.detector("jordan_center", None)
        assert hot is False
        assert host.recorder.metrics.counters["serve.cache_expired"] == 1.0

    def test_no_ttl_means_no_expiry(self):
        host, clock = self.host(ttl=None)
        key, payload = self.graph_payload()
        host.graph(key, payload)
        clock["now"] += 1e9
        _, hot = host.graph(key, payload)
        assert hot is True

    def test_serve_config_validates_ttl(self):
        with pytest.raises(ConfigError, match="cache_ttl_s must be > 0"):
            ServeConfig(cache_ttl_s=0.0).validate()
        ServeConfig(cache_ttl_s=30.0).validate()

    def test_pool_threads_ttl_to_hosts(self):
        clock = {"now": 0.0}
        pool = WorkerPool(1, queue_size=8, cache_ttl_s=5.0, clock=lambda: clock["now"])
        try:
            from repro.pipeline.cache import encode_graph

            payload = {"graph": encode_graph(synthetic_snapshot(2, 6, seed=12))}
            digest = wire.payload_digest(payload)
            pool.submit("detect", payload, digest)[1].result(timeout=30.0)
            clock["now"] += 60.0
            body = pool.submit("detect", payload, digest)[1].result(timeout=30.0)
            assert body["cache"]["graph"] == "cold"
            assert body["cache"]["engine"] == "cold"
            assert pool.metrics().counters["serve.cache_expired"] == 2.0
        finally:
            pool.shutdown()
