"""Unit tests for unknown-state masking and imputation."""

import pytest

from repro.core.imputation import (
    impute_unknown_states,
    mask_states,
    observed_fraction,
)
from repro.errors import ConfigError
from repro.graphs.signed_digraph import SignedDiGraph
from repro.types import NodeState


def stated_chain() -> SignedDiGraph:
    """r(+) -> a(+) -> b(-) via (+0.9, -0.8)."""
    g = SignedDiGraph()
    g.add_edge("r", "a", 1, 0.9)
    g.add_edge("a", "b", -1, 0.8)
    g.set_states(
        {
            "r": NodeState.POSITIVE,
            "a": NodeState.POSITIVE,
            "b": NodeState.NEGATIVE,
        }
    )
    return g


class TestMaskStates:
    def test_fraction_of_nodes_masked(self):
        g = stated_chain()
        masked = mask_states(g, 1 / 3, rng=1)
        unknown = [n for n in masked.nodes() if masked.state(n) is NodeState.UNKNOWN]
        assert len(unknown) == 1

    def test_zero_fraction_is_identity(self):
        g = stated_chain()
        masked = mask_states(g, 0.0, rng=1)
        assert masked.states() == g.states()

    def test_full_masking(self):
        masked = mask_states(stated_chain(), 1.0, rng=1)
        assert all(masked.state(n) is NodeState.UNKNOWN for n in masked.nodes())

    def test_original_untouched(self):
        g = stated_chain()
        mask_states(g, 1.0, rng=1)
        assert g.state("r") is NodeState.POSITIVE

    def test_deterministic(self):
        a = mask_states(stated_chain(), 0.5, rng=9)
        b = mask_states(stated_chain(), 0.5, rng=9)
        assert a.states() == b.states()

    @pytest.mark.parametrize("fraction", [-0.1, 1.1])
    def test_invalid_fraction_rejected(self, fraction):
        with pytest.raises(ConfigError):
            mask_states(stated_chain(), fraction)


class TestObservedFraction:
    def test_fully_observed(self):
        assert observed_fraction(stated_chain()) == 1.0

    def test_partially_observed(self):
        g = stated_chain()
        g.set_state("a", NodeState.UNKNOWN)
        assert observed_fraction(g) == pytest.approx(2 / 3)

    def test_empty_graph(self):
        assert observed_fraction(SignedDiGraph()) == 1.0


class TestImputeUnknownStates:
    def test_propagates_mfc_rule_through_positive_link(self):
        g = stated_chain()
        g.set_state("a", NodeState.UNKNOWN)
        completed = impute_unknown_states(g)
        # a's best active in-edge is r -> a (+): s(a) = +1.
        assert completed.state("a") is NodeState.POSITIVE

    def test_propagates_through_negative_link(self):
        g = stated_chain()
        g.set_state("b", NodeState.UNKNOWN)
        completed = impute_unknown_states(g)
        assert completed.state("b") is NodeState.NEGATIVE

    def test_chained_imputation(self):
        g = stated_chain()
        g.set_state("a", NodeState.UNKNOWN)
        g.set_state("b", NodeState.UNKNOWN)
        completed = impute_unknown_states(g)
        assert completed.state("a") is NodeState.POSITIVE
        assert completed.state("b") is NodeState.NEGATIVE

    def test_max_weight_in_edge_wins(self):
        g = SignedDiGraph()
        g.add_edge("p", "x", 1, 0.9)   # implies +1
        g.add_edge("q", "x", -1, 0.3)  # implies -1 (weaker)
        g.set_states({"p": NodeState.POSITIVE, "q": NodeState.POSITIVE})
        g.set_state("x", NodeState.UNKNOWN)
        assert impute_unknown_states(g).state("x") is NodeState.POSITIVE

    def test_isolated_unknown_falls_back_to_majority(self):
        g = stated_chain()
        g.add_node("island", NodeState.UNKNOWN)
        completed = impute_unknown_states(g)
        # Majority of {+, +, -} is positive.
        assert completed.state("island") is NodeState.POSITIVE

    def test_known_states_never_changed(self):
        g = stated_chain()
        g.set_state("a", NodeState.UNKNOWN)
        completed = impute_unknown_states(g)
        assert completed.state("r") is NodeState.POSITIVE
        assert completed.state("b") is NodeState.NEGATIVE

    def test_inactive_states_left_untouched(self):
        g = stated_chain()
        g.set_state("b", NodeState.INACTIVE)
        completed = impute_unknown_states(g)
        assert completed.state("b") is NodeState.INACTIVE

    def test_returns_new_graph(self):
        g = stated_chain()
        g.set_state("a", NodeState.UNKNOWN)
        impute_unknown_states(g)
        assert g.state("a") is NodeState.UNKNOWN
