"""Unit tests for the k-ISOMIT-BT dynamic program."""

import pytest

from repro.core.binarize import binarize_cascade_tree
from repro.core.tree_dp import (
    KIsomitBTSolver,
    brute_force_k_isomit,
    solve_k_isomit_bt,
)
from repro.errors import DynamicProgramError
from repro.graphs.generators.trees import random_general_tree
from repro.graphs.signed_digraph import SignedDiGraph
from repro.types import NodeState
from repro.utils.rng import derive_seed


def binarized(tree, alpha=3.0):
    return binarize_cascade_tree(tree, alpha=alpha)


def consistent_chain(weights, alpha=3.0):
    """A positive all-consistent path 0 -> 1 -> ... with given weights."""
    g = SignedDiGraph()
    g.add_node(0, NodeState.POSITIVE)
    for i, w in enumerate(weights):
        g.add_edge(i, i + 1, 1, w)
        g.set_state(i + 1, NodeState.POSITIVE)
    return binarized(g, alpha)


class TestSingleNode:
    def test_k1_selects_the_node(self):
        g = SignedDiGraph()
        g.add_node("x", NodeState.NEGATIVE)
        result = solve_k_isomit_bt(binarized(g), 1)
        assert result.score == 1.0
        assert result.initiators == {"x": NodeState.NEGATIVE}

    def test_k0_scores_zero(self):
        g = SignedDiGraph()
        g.add_node("x", NodeState.POSITIVE)
        result = solve_k_isomit_bt(binarized(g), 0)
        assert result.score == 0.0
        assert result.initiators == {}

    def test_k_out_of_range_raises(self):
        g = SignedDiGraph()
        g.add_node("x", NodeState.POSITIVE)
        with pytest.raises(DynamicProgramError):
            solve_k_isomit_bt(binarized(g), 2)
        with pytest.raises(DynamicProgramError):
            solve_k_isomit_bt(binarized(g), -1)


class TestChain:
    def test_k1_root_scores_one_plus_products(self):
        # weights 0.2 at alpha 3 -> g = 0.6 per hop.
        binary = consistent_chain([0.2, 0.2])
        result = solve_k_isomit_bt(binary, 1)
        assert result.score == pytest.approx(1.0 + 0.6 + 0.36)
        assert set(result.initiators) == {0}

    def test_k2_places_second_initiator_at_weakest_link(self):
        # Hop 1 strong (g=1), hop 2 weak (g=0.15): second initiator at node 2.
        binary = consistent_chain([0.5, 0.05])
        result = solve_k_isomit_bt(binary, 2)
        assert set(result.initiators) == {0, 2}
        assert result.score == pytest.approx(1.0 + 1.0 + 1.0)

    def test_scores_monotone_in_k(self):
        binary = consistent_chain([0.1, 0.2, 0.3, 0.05])
        scores = [solve_k_isomit_bt(binary, k).score for k in range(1, 6)]
        assert all(b >= a - 1e-12 for a, b in zip(scores, scores[1:]))

    def test_full_budget_explains_everything(self):
        binary = consistent_chain([0.1, 0.1, 0.1])
        result = solve_k_isomit_bt(binary, 4)
        assert result.score == pytest.approx(4.0)
        assert len(result.initiators) == 4


class TestInferredStates:
    def test_initiator_state_is_observed_state(self):
        g = SignedDiGraph()
        g.add_node("r", NodeState.POSITIVE)
        g.add_edge("r", "c", -1, 1.0)
        g.set_state("c", NodeState.NEGATIVE)
        result = solve_k_isomit_bt(binarized(g), 2)
        assert result.initiators == {
            "r": NodeState.POSITIVE,
            "c": NodeState.NEGATIVE,
        }


class TestDummyHandling:
    def test_dummies_never_selected(self):
        g = SignedDiGraph()
        g.add_node("r", NodeState.POSITIVE)
        for i in range(6):
            g.add_edge("r", f"c{i}", 1, 0.1)
            g.set_state(f"c{i}", NodeState.POSITIVE)
        binary = binarized(g)
        assert binary.size() > binary.num_real  # dummies exist
        result = solve_k_isomit_bt(binary, binary.num_real)
        assert set(result.initiators) == {"r"} | {f"c{i}" for i in range(6)}

    def test_dummy_transparency_in_scoring(self):
        # A wide star: with k=1 at the root, each child is explained with
        # its own direct g regardless of the inserted dummy layer.
        g = SignedDiGraph()
        g.add_node("r", NodeState.POSITIVE)
        for i in range(5):
            g.add_edge("r", f"c{i}", 1, 0.2)
            g.set_state(f"c{i}", NodeState.POSITIVE)
        result = solve_k_isomit_bt(binarized(g), 1)
        assert result.score == pytest.approx(1.0 + 5 * 0.6)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("size,k", [(5, 1), (5, 2), (7, 2), (7, 3), (9, 3)])
    def test_dp_matches_exhaustive_nearest_scoring(self, size, k):
        for trial in range(4):
            tree = random_general_tree(
                size, max_children=3, positive_probability=0.7,
                rng=derive_seed(size * 100 + k, trial),
            )
            # Assign sign-consistent-ish random states.
            from repro.utils.rng import spawn_rng

            rng = spawn_rng(derive_seed(size, k, trial), "states")
            for node in tree.nodes():
                tree.set_state(
                    node,
                    NodeState.POSITIVE if rng.random() < 0.6 else NodeState.NEGATIVE,
                )
            binary = binarized(tree)
            dp = solve_k_isomit_bt(binary, k)
            brute = brute_force_k_isomit(binary, k, scoring="nearest")
            assert dp.score == pytest.approx(brute.score), (
                f"DP {dp.score} vs brute {brute.score} "
                f"(size={size}, k={k}, trial={trial})"
            )

    def test_noisy_or_upper_bounds_nearest(self):
        tree = random_general_tree(8, max_children=3, rng=5)
        for node in tree.nodes():
            tree.set_state(node, NodeState.POSITIVE)
        binary = binarized(tree)
        nearest = brute_force_k_isomit(binary, 2, scoring="nearest")
        noisy = brute_force_k_isomit(binary, 2, scoring="noisy_or")
        assert noisy.score >= nearest.score - 1e-12

    def test_unknown_scoring_rejected(self):
        binary = consistent_chain([0.5])
        with pytest.raises(DynamicProgramError):
            brute_force_k_isomit(binary, 1, scoring="bogus")


class TestSolverReuse:
    def test_memo_shared_across_k(self):
        binary = consistent_chain([0.3, 0.2, 0.4])
        solver = KIsomitBTSolver(binary)
        first = solver.solve(1)
        second = solver.solve(2)
        assert second.score >= first.score
        # Re-solving k=1 hits the memo and reproduces the result.
        assert solver.solve(1).score == first.score

    def test_path_product_memoised(self):
        binary = consistent_chain([0.2, 0.2])
        solver = KIsomitBTSolver(binary)
        root = binary.root
        leaf = [n.uid for n in binary.nodes if n.left is None and n.right is None][0]
        assert solver.path_product(root, leaf) == pytest.approx(0.36)
        assert solver.path_product(root, leaf) == pytest.approx(0.36)
