"""Unit tests for the ASCII cascade-tree renderer."""

import pytest

from repro.errors import NotATreeError
from repro.experiments.ascii_tree import render_cascade_tree, render_forest
from repro.graphs.signed_digraph import SignedDiGraph
from repro.types import NodeState


@pytest.fixture
def tree(small_cascade_tree) -> SignedDiGraph:
    return small_cascade_tree


class TestRenderCascadeTree:
    def test_root_first_line(self, tree):
        text = render_cascade_tree(tree)
        assert text.splitlines()[0] == "r [+]"

    def test_all_nodes_present(self, tree):
        text = render_cascade_tree(tree)
        for node in tree.nodes():
            assert str(node) in text

    def test_edge_signs_and_weights_shown(self, tree):
        text = render_cascade_tree(tree)
        assert "(+0.50)" in text
        assert "(-0.40)" in text

    def test_states_shown(self, tree):
        text = render_cascade_tree(tree)
        assert "b [-]" in text
        assert "c [+]" in text

    def test_explicit_root(self, tree):
        text = render_cascade_tree(tree, root="a")
        assert text.splitlines()[0] == "a [+]"
        assert "b" not in text  # b is not under a

    def test_max_depth_truncation(self, tree):
        text = render_cascade_tree(tree, max_depth=1)
        assert "pruned" in text
        assert "c" not in text.replace("cascade", "")

    def test_max_children_truncation(self):
        g = SignedDiGraph()
        g.add_node("hub", NodeState.POSITIVE)
        for i in range(5):
            g.add_edge("hub", f"leaf{i}", 1, 0.5)
            g.set_state(f"leaf{i}", NodeState.POSITIVE)
        text = render_cascade_tree(g, max_children=2)
        assert "+3 more children" in text

    def test_auto_root_fails_on_forest(self):
        g = SignedDiGraph()
        g.add_nodes(["x", "y"])
        with pytest.raises(NotATreeError):
            render_cascade_tree(g)

    def test_unknown_state_glyph(self):
        g = SignedDiGraph()
        g.add_node("u", NodeState.UNKNOWN)
        assert render_cascade_tree(g, root="u") == "u [?]"


class TestRenderForest:
    def test_largest_tree_first(self, tree):
        single = SignedDiGraph()
        single.add_node("solo", NodeState.NEGATIVE)
        text = render_forest([single, tree])
        first_header = text.splitlines()[0]
        assert "5 nodes" in first_header

    def test_max_trees(self, tree):
        single = SignedDiGraph()
        single.add_node("solo", NodeState.NEGATIVE)
        text = render_forest([single, tree], max_trees=1)
        assert "solo" not in text
