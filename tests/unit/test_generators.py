"""Unit tests for the synthetic network generators."""

import pytest

from repro.errors import ConfigError
from repro.graphs.generators.random_graphs import (
    signed_configuration_model,
    signed_erdos_renyi,
    signed_preferential_attachment,
    signed_watts_strogatz,
)
from repro.graphs.generators.snapshot_like import (
    EPINIONS_PROFILE,
    SLASHDOT_PROFILE,
    generate_epinions_like,
    generate_profiled_network,
    generate_slashdot_like,
)
from repro.graphs.generators.trees import (
    is_arborescence,
    path_graph,
    random_binary_tree,
    random_general_tree,
    star_graph,
)
from repro.graphs.stats import positive_fraction, reciprocity


class TestErdosRenyi:
    def test_node_count(self):
        g = signed_erdos_renyi(30, 0.1, rng=1)
        assert g.number_of_nodes() == 30

    def test_edge_probability_zero(self):
        assert signed_erdos_renyi(10, 0.0, rng=1).number_of_edges() == 0

    def test_edge_probability_one(self):
        g = signed_erdos_renyi(6, 1.0, rng=1)
        assert g.number_of_edges() == 30  # all ordered pairs

    def test_positive_probability_respected(self):
        g = signed_erdos_renyi(40, 0.3, positive_probability=1.0, rng=1)
        assert positive_fraction(g) == 1.0

    def test_deterministic(self):
        a = signed_erdos_renyi(20, 0.2, rng=9)
        b = signed_erdos_renyi(20, 0.2, rng=9)
        assert {(u, v) for u, v, _ in a.iter_edges()} == {
            (u, v) for u, v, _ in b.iter_edges()
        }

    def test_invalid_n_rejected(self):
        with pytest.raises(ConfigError):
            signed_erdos_renyi(-1, 0.5)


class TestPreferentialAttachment:
    def test_no_self_loops(self):
        g = signed_preferential_attachment(100, out_degree=3, rng=2)
        assert all(u != v for u, v, _ in g.iter_edges())

    def test_edges_point_to_earlier_nodes(self):
        g = signed_preferential_attachment(50, out_degree=2, rng=2)
        assert all(v < u for u, v, _ in g.iter_edges())

    def test_heavy_tail_exists(self):
        g = signed_preferential_attachment(300, out_degree=3, rng=2)
        max_in = max(g.in_degree(v) for v in g.nodes())
        assert max_in >= 10  # hubs form

    def test_out_degree_validation(self):
        with pytest.raises(ConfigError):
            signed_preferential_attachment(10, out_degree=0)


class TestWattsStrogatz:
    def test_no_rewiring_gives_ring(self):
        g = signed_watts_strogatz(10, k=2, rewire_probability=0.0, rng=3)
        assert g.has_edge(0, 1) and g.has_edge(0, 2)
        assert g.number_of_edges() == 20

    def test_small_graphs(self):
        assert signed_watts_strogatz(1, k=2, rng=1).number_of_edges() == 0
        assert signed_watts_strogatz(0, k=2, rng=1).number_of_nodes() == 0


class TestConfigurationModel:
    def test_degree_sums_must_match(self):
        with pytest.raises(ConfigError):
            signed_configuration_model([2, 0], [1, 0])

    def test_lengths_must_match(self):
        with pytest.raises(ConfigError):
            signed_configuration_model([1], [1, 0])

    def test_realised_degrees_bounded_by_prescription(self):
        out_deg = [2, 2, 2, 2]
        in_deg = [2, 2, 2, 2]
        g = signed_configuration_model(out_deg, in_deg, rng=4)
        for v in g.nodes():
            assert g.out_degree(v) <= out_deg[v]
            assert g.in_degree(v) <= in_deg[v]


class TestTrees:
    def test_binary_tree_is_arborescence(self):
        tree = random_binary_tree(40, rng=5)
        assert is_arborescence(tree)

    def test_binary_tree_fanout_bounded(self):
        tree = random_binary_tree(60, rng=6)
        assert all(tree.out_degree(v) <= 2 for v in tree.nodes())

    def test_general_tree_fanout_bounded(self):
        tree = random_general_tree(60, max_children=4, rng=7)
        assert is_arborescence(tree)
        assert all(tree.out_degree(v) <= 4 for v in tree.nodes())

    def test_path_graph(self):
        p = path_graph(5)
        assert p.number_of_edges() == 4
        assert is_arborescence(p)

    def test_star_graph_directions(self):
        outward = star_graph(4, outward=True)
        assert outward.out_degree(0) == 4
        inward = star_graph(4, outward=False)
        assert inward.in_degree(0) == 4

    def test_is_arborescence_rejects_cycle(self):
        g = path_graph(3)
        g.add_edge(2, 0, 1, 1.0)
        assert not is_arborescence(g)

    def test_empty_and_singleton(self):
        assert random_binary_tree(0).number_of_nodes() == 0
        assert is_arborescence(random_binary_tree(1))


class TestProfiledGenerators:
    def test_epinions_like_scale(self):
        g = generate_epinions_like(scale=0.005, rng=1)
        expected_nodes = int(round(EPINIONS_PROFILE.num_nodes * 0.005))
        assert g.number_of_nodes() == expected_nodes
        expected_edges = int(round(EPINIONS_PROFILE.num_edges * 0.005))
        assert abs(g.number_of_edges() - expected_edges) / expected_edges < 0.05

    def test_slashdot_like_reciprocity_higher_than_epinions(self):
        slash = generate_slashdot_like(scale=0.005, rng=1)
        epin = generate_epinions_like(scale=0.005, rng=1)
        assert reciprocity(slash) > reciprocity(epin)

    def test_positive_fraction_in_ballpark(self):
        g = generate_slashdot_like(scale=0.01, rng=2)
        assert abs(positive_fraction(g) - SLASHDOT_PROFILE.positive_fraction) < 0.15

    def test_deterministic(self):
        a = generate_epinions_like(scale=0.003, rng=11)
        b = generate_epinions_like(scale=0.003, rng=11)
        assert {(u, v) for u, v, _ in a.iter_edges()} == {
            (u, v) for u, v, _ in b.iter_edges()
        }

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigError):
            generate_profiled_network(EPINIONS_PROFILE, scale=0.0)

    def test_no_self_loops(self):
        g = generate_epinions_like(scale=0.003, rng=3)
        assert all(u != v for u, v, _ in g.iter_edges())

    def test_wiki_elec_profile(self):
        from repro.graphs.generators.snapshot_like import (
            WIKI_ELEC_PROFILE,
            generate_wiki_elec_like,
        )

        g = generate_wiki_elec_like(scale=0.05, rng=2)
        assert g.number_of_nodes() == int(round(WIKI_ELEC_PROFILE.num_nodes * 0.05))
        # Votes are one-way: reciprocity far below Slashdot's.
        assert reciprocity(g) < 0.3

    def test_wiki_elec_workload_end_to_end(self):
        from repro.experiments.config import WorkloadConfig
        from repro.experiments.workload import build_workload

        workload = build_workload(
            WorkloadConfig(dataset="wiki-elec", scale=0.03, seed=3)
        )
        assert workload.infected.number_of_nodes() >= len(workload.seeds)
