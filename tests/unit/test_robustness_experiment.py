"""Unit tests for the robustness (X4/X5) experiment module."""

from repro.experiments import robustness


class TestMaskingSweep:
    def test_points_cover_fractions(self):
        points = robustness.run_masking_sweep(
            fractions=(0.0, 0.5), scale=0.002, seed=3
        )
        assert [p.mask_fraction for p in points] == [0.0, 0.5]
        for point in points:
            assert 0.0 <= point.precision <= 1.0
            assert 0.0 <= point.recall <= 1.0
            assert point.num_detected >= 0

    def test_observed_fraction_tracks_mask(self):
        points = robustness.run_masking_sweep(
            fractions=(0.0, 0.4), scale=0.002, seed=3
        )
        assert points[0].observed_fraction == 1.0
        assert abs(points[1].observed_fraction - 0.6) < 0.05

    def test_render(self):
        points = robustness.run_masking_sweep(fractions=(0.0,), scale=0.002, seed=3)
        text = robustness.render_masking_sweep(points)
        assert "Ablation X4" in text


class TestInconsistentValueAblation:
    def test_both_readings_evaluated(self):
        comparisons = robustness.run_inconsistent_value_ablation(scale=0.002, seed=3)
        assert [c.inconsistent_value for c in comparisons] == [0.0, 1.0]

    def test_render(self):
        comparisons = robustness.run_inconsistent_value_ablation(scale=0.002, seed=3)
        assert "Ablation X5" in robustness.render_inconsistent_value(comparisons)


class TestSnapshotTimeSweep:
    def test_infected_counts_monotone_in_rounds(self):
        points = robustness.run_snapshot_time_sweep(
            rounds=(1, 3, 50), scale=0.002, seed=3
        )
        infected = [p.infected for p in points]
        assert infected == sorted(infected)

    def test_rounds_echoed(self):
        points = robustness.run_snapshot_time_sweep(rounds=(2, 5), scale=0.002, seed=3)
        assert [p.rounds for p in points] == [2, 5]

    def test_render(self):
        points = robustness.run_snapshot_time_sweep(rounds=(2,), scale=0.002, seed=3)
        assert "Ablation X7" in robustness.render_snapshot_time(points)
