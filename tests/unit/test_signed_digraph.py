"""Unit tests for the SignedDiGraph substrate."""

import pytest

from repro.errors import (
    EdgeNotFoundError,
    InvalidSignError,
    InvalidWeightError,
    NodeNotFoundError,
)
from repro.graphs.signed_digraph import EdgeData, SignedDiGraph
from repro.types import NodeState, Sign


@pytest.fixture
def graph() -> SignedDiGraph:
    g = SignedDiGraph(name="g")
    g.add_edge(1, 2, 1, 0.5)
    g.add_edge(2, 3, -1, 0.25)
    g.add_edge(3, 1, 1, 1.0)
    return g


class TestNodes:
    def test_add_node_is_idempotent(self, graph):
        graph.add_node(1)
        assert graph.number_of_nodes() == 3

    def test_add_node_preserves_existing_state(self, graph):
        graph.set_state(1, NodeState.POSITIVE)
        graph.add_node(1)
        assert graph.state(1) is NodeState.POSITIVE

    def test_contains_and_has_node(self, graph):
        assert 1 in graph
        assert graph.has_node(2)
        assert 99 not in graph

    def test_len_and_iter(self, graph):
        assert len(graph) == 3
        assert sorted(graph) == [1, 2, 3]

    def test_remove_node_drops_incident_edges(self, graph):
        graph.remove_node(2)
        assert not graph.has_edge(1, 2)
        assert not graph.has_edge(2, 3)
        assert graph.number_of_edges() == 1

    def test_remove_missing_node_raises(self, graph):
        with pytest.raises(NodeNotFoundError):
            graph.remove_node(99)

    def test_add_nodes_bulk(self):
        g = SignedDiGraph()
        g.add_nodes(range(5))
        assert g.number_of_nodes() == 5


class TestStates:
    def test_default_state_is_inactive(self, graph):
        assert graph.state(1) is NodeState.INACTIVE

    def test_set_and_get_state(self, graph):
        graph.set_state(2, NodeState.NEGATIVE)
        assert graph.state(2) is NodeState.NEGATIVE

    def test_set_state_unknown_node_raises(self, graph):
        with pytest.raises(NodeNotFoundError):
            graph.set_state(99, NodeState.POSITIVE)

    def test_state_unknown_node_raises(self, graph):
        with pytest.raises(NodeNotFoundError):
            graph.state(99)

    def test_set_states_bulk_and_active_nodes(self, graph):
        graph.set_states({1: NodeState.POSITIVE, 2: NodeState.NEGATIVE})
        assert sorted(graph.active_nodes()) == [1, 2]

    def test_reset_states(self, graph):
        graph.set_states({1: NodeState.POSITIVE})
        graph.reset_states()
        assert graph.active_nodes() == []

    def test_states_returns_copy(self, graph):
        states = graph.states()
        states[1] = NodeState.POSITIVE
        assert graph.state(1) is NodeState.INACTIVE


class TestEdges:
    def test_edge_payload(self, graph):
        data = graph.edge(1, 2)
        assert data.sign is Sign.POSITIVE
        assert data.weight == 0.5

    def test_sign_and_weight_accessors(self, graph):
        assert graph.sign(2, 3) is Sign.NEGATIVE
        assert graph.weight(2, 3) == 0.25

    def test_add_edge_creates_endpoints(self):
        g = SignedDiGraph()
        g.add_edge("x", "y", -1, 0.1)
        assert g.has_node("x") and g.has_node("y")

    def test_add_edge_overwrite_keeps_edge_count(self, graph):
        graph.add_edge(1, 2, -1, 0.9)
        assert graph.number_of_edges() == 3
        assert graph.sign(1, 2) is Sign.NEGATIVE

    def test_invalid_sign_rejected(self, graph):
        with pytest.raises(InvalidSignError):
            graph.add_edge(1, 3, 0, 0.5)

    @pytest.mark.parametrize("weight", [-0.1, 1.1, float("nan")])
    def test_invalid_weight_rejected(self, graph, weight):
        with pytest.raises(InvalidWeightError):
            graph.add_edge(1, 3, 1, weight)

    def test_remove_edge(self, graph):
        graph.remove_edge(1, 2)
        assert not graph.has_edge(1, 2)
        assert graph.number_of_edges() == 2

    def test_remove_missing_edge_raises(self, graph):
        with pytest.raises(EdgeNotFoundError):
            graph.remove_edge(1, 3)

    def test_edge_missing_raises(self, graph):
        with pytest.raises(EdgeNotFoundError):
            graph.edge(3, 2)

    def test_set_weight(self, graph):
        graph.set_weight(1, 2, 0.75)
        assert graph.weight(1, 2) == 0.75

    def test_set_weight_validates(self, graph):
        with pytest.raises(InvalidWeightError):
            graph.set_weight(1, 2, 2.0)

    def test_edges_listing(self, graph):
        triples = graph.edges()
        assert len(triples) == 3
        assert all(isinstance(d, EdgeData) for _, _, d in triples)

    def test_positive_and_negative_edges(self, graph):
        assert {(u, v) for u, v, _ in graph.positive_edges()} == {(1, 2), (3, 1)}
        assert {(u, v) for u, v, _ in graph.negative_edges()} == {(2, 3)}


class TestNeighbourhoods:
    def test_successors_predecessors(self, graph):
        assert graph.successors(1) == [2]
        assert graph.predecessors(1) == [3]

    def test_degrees(self, graph):
        assert graph.out_degree(1) == 1
        assert graph.in_degree(1) == 1
        assert graph.degree(1) == 2

    def test_neighbors_union(self, graph):
        assert sorted(graph.neighbors(1)) == [2, 3]

    def test_missing_node_raises_everywhere(self, graph):
        for method in (
            graph.successors,
            graph.predecessors,
            graph.out_edges,
            graph.in_edges,
            graph.out_degree,
            graph.in_degree,
            graph.neighbors,
        ):
            with pytest.raises(NodeNotFoundError):
                method(99)

    def test_in_out_edges_payloads(self, graph):
        (u, v, data), = graph.out_edges(1)
        assert (u, v) == (1, 2) and data.weight == 0.5
        (u, v, data), = graph.in_edges(1)
        assert (u, v) == (3, 1) and data.weight == 1.0


class TestWholeGraphOps:
    def test_copy_is_deep(self, graph):
        graph.set_state(1, NodeState.POSITIVE)
        clone = graph.copy()
        clone.set_weight(1, 2, 0.9)
        clone.set_state(1, NodeState.NEGATIVE)
        assert graph.weight(1, 2) == 0.5
        assert graph.state(1) is NodeState.POSITIVE

    def test_reverse_flips_directions_keeps_payloads(self, graph):
        rev = graph.reverse()
        assert rev.has_edge(2, 1) and not rev.has_edge(1, 2)
        assert rev.sign(2, 1) is Sign.POSITIVE
        assert rev.weight(2, 1) == 0.5

    def test_reverse_preserves_states(self, graph):
        graph.set_state(2, NodeState.NEGATIVE)
        assert graph.reverse().state(2) is NodeState.NEGATIVE

    def test_double_reverse_restores_edges(self, graph):
        back = graph.reverse().reverse()
        assert {(u, v) for u, v, _ in back.iter_edges()} == {
            (u, v) for u, v, _ in graph.iter_edges()
        }

    def test_subgraph_induces_edges(self, graph):
        sub = graph.subgraph([1, 2])
        assert sub.has_edge(1, 2)
        assert sub.number_of_edges() == 1
        assert sub.number_of_nodes() == 2

    def test_subgraph_unknown_node_raises(self, graph):
        with pytest.raises(NodeNotFoundError):
            graph.subgraph([1, 99])

    def test_repr_mentions_counts(self, graph):
        assert "3 nodes" in repr(graph)
        assert "3 edges" in repr(graph)


class TestNeighborsOrder:
    def test_neighbors_repr_sorted_order_pinned(self):
        """`neighbors` must return repr-sorted order, not set order.

        Regression: it used to list a raw set union, so the order varied
        with PYTHONHASHSEED. Note the pinned order is lexicographic on
        repr (10 sorts before 2), the library's canonical node order.
        """
        g = SignedDiGraph()
        g.add_edge(5, 2, 1, 0.5)    # successor of 5
        g.add_edge(10, 5, 1, 0.5)   # predecessor of 5
        g.add_edge(5, 1, -1, 0.5)   # successor of 5
        assert g.neighbors(5) == [1, 10, 2]

    def test_neighbors_order_stable_across_insertion_orders(self):
        a = SignedDiGraph()
        a.add_edge("x", "m", 1, 0.5)
        a.add_edge("n", "x", 1, 0.5)
        b = SignedDiGraph()
        b.add_edge("n", "x", 1, 0.5)
        b.add_edge("x", "m", 1, 0.5)
        assert a.neighbors("x") == b.neighbors("x") == ["m", "n"]


class TestVersionCounters:
    def test_fresh_graph_starts_at_zero(self):
        g = SignedDiGraph()
        assert g.version == 0
        assert g.structure_version == 0

    def test_every_mutator_bumps_version(self, graph):
        before = graph.version
        graph.add_node(4)
        graph.add_edge(4, 1, 1, 0.5)
        graph.set_weight(4, 1, 0.6)
        graph.set_state(4, NodeState.POSITIVE)
        graph.remove_edge(4, 1)
        graph.remove_node(4)
        graph.reset_states()
        assert graph.version >= before + 7

    def test_state_changes_do_not_bump_structure_version(self, graph):
        before = graph.structure_version
        graph.set_state(1, NodeState.POSITIVE)
        graph.set_states({2: NodeState.NEGATIVE})
        graph.reset_states()
        assert graph.structure_version == before
        assert graph.version > 0

    def test_structural_changes_bump_structure_version(self, graph):
        before = graph.structure_version
        graph.set_weight(1, 2, 0.9)
        assert graph.structure_version == before + 1
        graph.add_edge(1, 3, -1, 0.1)
        assert graph.structure_version == before + 2
        graph.remove_edge(1, 3)
        assert graph.structure_version == before + 3

    def test_idempotent_add_node_does_not_bump(self, graph):
        before = graph.version
        graph.add_node(1)  # already present
        assert graph.version == before

    def test_bump_version_records_out_of_band_mutation(self, graph):
        v, s = graph.version, graph.structure_version
        graph.bump_version()
        assert (graph.version, graph.structure_version) == (v + 1, s + 1)
        graph.bump_version(structural=False)
        assert (graph.version, graph.structure_version) == (v + 2, s + 1)


class TestMutatorVersionAudit:
    """Every mutator must bump ``version``; topology/sign/weight mutators
    must also bump ``structure_version`` (which keys the kernel's
    WeakKeyDictionary compile cache), while state-only mutators must not.
    A missing bump silently serves stale compiled CSR forms and stale
    content digests, so the full matrix is pinned here.
    """

    STRUCTURAL = [
        ("add_node", lambda g: g.add_node(99)),
        ("remove_node", lambda g: g.remove_node(3)),
        ("add_edge", lambda g: g.add_edge(1, 3, -1, 0.4)),
        ("add_edge_overwrite", lambda g: g.add_edge(1, 2, -1, 0.4)),
        ("remove_edge", lambda g: g.remove_edge(1, 2)),
        ("set_weight", lambda g: g.set_weight(1, 2, 0.9)),
    ]
    STATE_ONLY = [
        ("set_state", lambda g: g.set_state(1, NodeState.POSITIVE)),
        ("set_states", lambda g: g.set_states({2: NodeState.NEGATIVE})),
        ("reset_states", lambda g: g.reset_states()),
    ]

    @pytest.mark.parametrize("name,mutate", STRUCTURAL, ids=[n for n, _ in STRUCTURAL])
    def test_structural_mutators_bump_both_counters(self, graph, name, mutate):
        v, s = graph.version, graph.structure_version
        mutate(graph)
        assert graph.version > v, f"{name} must bump version"
        assert graph.structure_version > s, f"{name} must bump structure_version"

    @pytest.mark.parametrize("name,mutate", STATE_ONLY, ids=[n for n, _ in STATE_ONLY])
    def test_state_mutators_bump_only_version(self, graph, name, mutate):
        v, s = graph.version, graph.structure_version
        mutate(graph)
        assert graph.version > v, f"{name} must bump version"
        assert graph.structure_version == s, f"{name} must not bump structure_version"

    def test_kernel_recompiles_and_detection_changes_after_edge_removal(self):
        """In-place edge removal must invalidate the compile cache *and*
        flow through to a different detection result — the end-to-end
        contract streaming deltas rely on.
        """
        from repro.core.rid import RID, RIDConfig
        from repro.kernel.compile import compile_graph

        g = SignedDiGraph()
        g.add_edge("a", "b", 1, 0.9)
        g.add_edge("b", "c", 1, 0.8)
        g.set_states({n: NodeState.POSITIVE for n in "abc"})

        compiled = compile_graph(g)
        assert compile_graph(g) is compiled  # memoized while unmutated
        before = RID(RIDConfig()).detect(g)
        assert before.initiators == {"a"}

        g.remove_edge("a", "b")
        recompiled = compile_graph(g)
        assert recompiled is not compiled  # structure_version bump took
        after = RID(RIDConfig()).detect(g)
        assert after.initiators == {"a", "b"}
