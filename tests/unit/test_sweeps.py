"""Unit tests for the generic sweep harness."""

import pytest

from repro.core.baselines import RIDTreeDetector
from repro.errors import ConfigError
from repro.experiments.config import WorkloadConfig
from repro.experiments.sweeps import (
    render_oracle_k,
    render_sweep,
    run_oracle_k_ablation,
    run_theta_sweep,
    sweep_workload_parameter,
)


BASE = WorkloadConfig(dataset="epinions", scale=0.002, seed=3)


class TestSweepHarness:
    def test_values_echoed_in_order(self):
        points = sweep_workload_parameter(
            "alpha", (1.0, 3.0), lambda: RIDTreeDetector(), base_config=BASE
        )
        assert [p.value for p in points] == [1.0, 3.0]

    def test_alpha_sweep_changes_infection(self):
        points = sweep_workload_parameter(
            "alpha", (1.0, 5.0), lambda: RIDTreeDetector(), base_config=BASE
        )
        assert points[1].infected >= points[0].infected

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError):
            sweep_workload_parameter(
                "gamma", (1,), lambda: RIDTreeDetector(), base_config=BASE
            )

    def test_identity_only_detector_has_no_state_accuracy(self):
        points = sweep_workload_parameter(
            "alpha", (3.0,), lambda: RIDTreeDetector(), base_config=BASE
        )
        assert points[0].state_accuracy is None

    def test_render(self):
        points = sweep_workload_parameter(
            "alpha", (3.0,), lambda: RIDTreeDetector(), base_config=BASE
        )
        assert "Sweep over alpha" in render_sweep("alpha", points)


class TestOracleK:
    def test_two_modes_reported(self):
        comparisons = run_oracle_k_ablation(scale=0.002, seed=3)
        assert len(comparisons) == 2
        assert comparisons[0].mode.startswith("beta")
        assert comparisons[1].mode.startswith("oracle")

    def test_render(self):
        comparisons = run_oracle_k_ablation(scale=0.002, seed=3)
        assert "Ablation X9" in render_oracle_k(comparisons)


class TestThetaSweep:
    def test_thetas_echoed(self):
        points = run_theta_sweep(thetas=(0.0, 1.0), scale=0.002, seed=3)
        assert [p.value for p in points] == [0.0, 1.0]
