"""Unit tests for the set-cover solvers and the Lemma 3.1 reduction."""

import pytest

from repro.complexity.reduction import (
    certainty_closure,
    isomit_solution_to_cover,
    min_certain_initiators,
    set_cover_to_isomit,
)
from repro.complexity.set_cover import (
    SetCoverInstance,
    exact_set_cover,
    greedy_set_cover,
)
from repro.errors import InfeasibleCoverError, InvalidSetCoverError
from repro.graphs.signed_digraph import SignedDiGraph
from repro.types import NodeState


def simple_instance() -> SetCoverInstance:
    return SetCoverInstance.from_lists(
        universe=[1, 2, 3, 4, 5],
        subsets=[[1, 2, 3], [2, 4], [3, 4], [4, 5], [5]],
    )


class TestSetCoverInstance:
    def test_from_lists(self):
        instance = simple_instance()
        assert len(instance.subsets) == 5
        assert instance.is_feasible()

    def test_rejects_foreign_elements(self):
        with pytest.raises(InvalidSetCoverError):
            SetCoverInstance.from_lists([1, 2], [[1, 3]])

    def test_check_cover(self):
        instance = simple_instance()
        assert instance.check_cover([0, 3])
        assert not instance.check_cover([1, 2])


class TestGreedySetCover:
    def test_produces_valid_cover(self):
        instance = simple_instance()
        chosen = greedy_set_cover(instance)
        assert instance.check_cover(chosen)

    def test_infeasible_raises(self):
        instance = SetCoverInstance.from_lists([1, 2], [[1]])
        with pytest.raises(InfeasibleCoverError):
            greedy_set_cover(instance)


class TestExactSetCover:
    def test_finds_optimum(self):
        instance = simple_instance()
        chosen = exact_set_cover(instance)
        assert instance.check_cover(chosen)
        assert len(chosen) == 2  # {1,2,3} + {4,5}

    def test_never_worse_than_greedy(self):
        instance = SetCoverInstance.from_lists(
            universe=list(range(6)),
            subsets=[[0, 1], [2, 3], [4, 5], [0, 2, 4], [1, 3, 5]],
        )
        exact = exact_set_cover(instance)
        greedy = greedy_set_cover(instance)
        assert len(exact) <= len(greedy)
        assert len(exact) == 2

    def test_infeasible_raises(self):
        with pytest.raises(InfeasibleCoverError):
            exact_set_cover(SetCoverInstance.from_lists([1, 2], [[1]]))


class TestReductionGadget:
    def test_gadget_structure(self):
        reduced = set_cover_to_isomit(simple_instance())
        graph = reduced.graph
        # 5 element nodes + 5 subset nodes + dummy.
        assert graph.number_of_nodes() == 11
        # Element nodes observed +1; subset nodes unknown.
        for node in reduced.element_nodes.values():
            assert graph.state(node) is NodeState.POSITIVE
        for node in reduced.subset_nodes.values():
            assert graph.state(node) is NodeState.UNKNOWN

    def test_membership_links_are_certain(self):
        reduced = set_cover_to_isomit(simple_instance())
        subset0 = reduced.subset_nodes[0]
        for element in (1, 2, 3):
            assert reduced.graph.weight(subset0, reduced.element_nodes[element]) == 1.0

    def test_gadget_without_dummy(self):
        reduced = set_cover_to_isomit(simple_instance(), include_dummy=False)
        assert reduced.dummy_node is None
        assert reduced.graph.number_of_nodes() == 10


class TestCertaintyClosure:
    def test_certain_chain(self):
        g = SignedDiGraph()
        g.add_edge("a", "b", 1, 1.0)
        g.add_edge("b", "c", 1, 1.0)
        assert certainty_closure(g, {"a"}) == {"a", "b", "c"}

    def test_uncertain_link_blocks(self):
        g = SignedDiGraph()
        g.add_edge("a", "b", 1, 0.5)
        assert certainty_closure(g, {"a"}) == {"a"}

    def test_alpha_boost_saturates(self):
        g = SignedDiGraph()
        g.add_edge("a", "b", 1, 0.5)
        assert certainty_closure(g, {"a"}, alpha=2.0) == {"a", "b"}

    def test_negative_links_not_boosted(self):
        g = SignedDiGraph()
        g.add_edge("a", "b", -1, 0.5)
        assert certainty_closure(g, {"a"}, alpha=3.0) == {"a"}


class TestEquivalence:
    def test_min_initiators_equals_cover_optimum(self):
        instance = simple_instance()
        reduced = set_cover_to_isomit(instance)
        initiators = min_certain_initiators(reduced)
        assert len(initiators) == len(exact_set_cover(instance))

    def test_roundtrip_cover_is_feasible(self):
        instance = simple_instance()
        reduced = set_cover_to_isomit(instance)
        initiators = min_certain_initiators(reduced)
        cover = isomit_solution_to_cover(reduced, initiators)
        assert instance.check_cover(cover)

    def test_dummy_does_not_change_optimum(self):
        instance = simple_instance()
        with_dummy = min_certain_initiators(set_cover_to_isomit(instance, True))
        without = min_certain_initiators(set_cover_to_isomit(instance, False))
        assert len(with_dummy) == len(without)

    def test_element_initiators_exchangeable(self):
        instance = simple_instance()
        reduced = set_cover_to_isomit(instance)
        # Hand-pick element initiators; mapping back must yield a cover.
        chosen = set(reduced.element_nodes.values())
        cover = isomit_solution_to_cover(reduced, chosen)
        assert instance.check_cover(cover)
