"""Unit tests for the Chu-Liu/Edmonds arborescence machinery."""

import math

import pytest

from repro.core.arborescence import (
    branching_likelihood,
    branching_roots,
    find_circles,
    log_score,
    maximum_spanning_branching,
    maximum_weight_spanning_graph,
    raw_score,
)
from repro.graphs.generators.trees import is_arborescence
from repro.graphs.signed_digraph import SignedDiGraph
from repro.types import NodeState


def build(edges) -> SignedDiGraph:
    g = SignedDiGraph()
    for u, v, w in edges:
        g.add_edge(u, v, 1, w)
    return g


class TestScoreTransforms:
    def test_log_score_monotone(self):
        assert log_score(0.9) > log_score(0.1)

    def test_log_score_handles_zero(self):
        assert math.isfinite(log_score(0.0))

    def test_raw_score_identity(self):
        assert raw_score(0.37) == 0.37


class TestMWSG:
    def test_each_node_picks_best_in_edge(self):
        g = build([(0, 2, 0.3), (1, 2, 0.8), (0, 1, 0.5)])
        best = maximum_weight_spanning_graph(g)
        assert best[2][0] == 1  # 0.8 beats 0.3
        assert best[1][0] == 0

    def test_in_degree_zero_nodes_absent(self):
        g = build([(0, 1, 0.5)])
        best = maximum_weight_spanning_graph(g)
        assert 0 not in best
        assert 1 in best

    def test_self_loops_ignored(self):
        g = build([(0, 0, 0.9), (1, 0, 0.2)])
        best = maximum_weight_spanning_graph(g)
        assert best[0][0] == 1


class TestFindCircles:
    def test_no_cycle(self):
        assert find_circles({1: 0, 2: 1}) == []

    def test_two_cycle(self):
        cycles = find_circles({0: 1, 1: 0})
        assert len(cycles) == 1
        assert set(cycles[0]) == {0, 1}

    def test_cycle_with_tail(self):
        # 3 -> 2 -> 0 <-> 1
        cycles = find_circles({0: 1, 1: 0, 2: 0, 3: 2})
        assert len(cycles) == 1
        assert set(cycles[0]) == {0, 1}

    def test_multiple_disjoint_cycles(self):
        cycles = find_circles({0: 1, 1: 0, 2: 3, 3: 2})
        assert len(cycles) == 2
        assert {frozenset(c) for c in cycles} == {frozenset({0, 1}), frozenset({2, 3})}


class TestMaximumSpanningBranching:
    def test_empty_graph(self):
        forest = maximum_spanning_branching(SignedDiGraph())
        assert forest.number_of_nodes() == 0

    def test_single_node(self):
        g = SignedDiGraph()
        g.add_node("x", NodeState.POSITIVE)
        forest = maximum_spanning_branching(g)
        assert forest.nodes() == ["x"]
        assert forest.state("x") is NodeState.POSITIVE

    def test_tree_input_returned_unchanged(self):
        g = build([(0, 1, 0.5), (0, 2, 0.7), (2, 3, 0.2)])
        forest = maximum_spanning_branching(g)
        assert {(u, v) for u, v, _ in forest.iter_edges()} == {
            (0, 1),
            (0, 2),
            (2, 3),
        }

    def test_picks_heavier_parents(self):
        g = build([(0, 2, 0.1), (1, 2, 0.9), (0, 1, 0.5)])
        forest = maximum_spanning_branching(g)
        assert forest.has_edge(1, 2)
        assert not forest.has_edge(0, 2)

    def test_breaks_source_cycle_minimally(self):
        # 0 <-> 1 with no external entry: one must become a root and the
        # heavier cycle edge is kept.
        g = build([(0, 1, 0.9), (1, 0, 0.3)])
        forest = maximum_spanning_branching(g)
        assert forest.has_edge(0, 1)
        assert not forest.has_edge(1, 0)
        assert branching_roots(forest) == [0]

    def test_result_is_forest_of_arborescences(self):
        g = build(
            [
                (0, 1, 0.4),
                (1, 2, 0.6),
                (2, 0, 0.5),
                (3, 2, 0.2),
                (2, 3, 0.8),
                (4, 5, 0.9),
            ]
        )
        forest = maximum_spanning_branching(g)
        assert all(forest.in_degree(v) <= 1 for v in forest.nodes())
        # Per-root reachability partition covers everything: no cycles.
        from repro.core.cascade_forest import split_branching_into_trees

        trees = split_branching_into_trees(forest)
        assert sum(t.number_of_nodes() for t in trees) == forest.number_of_nodes()
        assert all(is_arborescence(t) for t in trees)

    def test_every_node_with_usable_parent_gets_one(self):
        g = build([(0, 1, 0.5), (0, 2, 0.5), (1, 3, 0.5)])
        forest = maximum_spanning_branching(g)
        assert branching_roots(forest) == [0]

    def test_states_copied_to_forest(self):
        g = build([(0, 1, 0.5)])
        g.set_state(1, NodeState.NEGATIVE)
        forest = maximum_spanning_branching(g)
        assert forest.state(1) is NodeState.NEGATIVE

    def test_raw_score_also_valid_branching(self):
        g = build([(0, 1, 0.4), (1, 0, 0.6), (1, 2, 0.2), (2, 1, 0.9)])
        forest = maximum_spanning_branching(g, score="raw")
        assert all(forest.in_degree(v) <= 1 for v in forest.nodes())

    def test_unknown_score_rejected(self):
        with pytest.raises(KeyError):
            maximum_spanning_branching(build([(0, 1, 0.5)]), score="bogus")


class TestBranchingHelpers:
    def test_branching_likelihood_is_weight_product(self):
        g = build([(0, 1, 0.5), (1, 2, 0.4)])
        forest = maximum_spanning_branching(g)
        assert branching_likelihood(forest) == pytest.approx(0.2)

    def test_roots_sorted(self):
        g = SignedDiGraph()
        g.add_nodes([3, 1, 2])
        forest = maximum_spanning_branching(g)
        assert branching_roots(forest) == [1, 2, 3]
