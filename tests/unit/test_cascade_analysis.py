"""Unit tests for cascade analytics."""

import pytest

from repro.diffusion.analysis import (
    aggregate_cascade_stats,
    cascade_stats,
)
from repro.diffusion.mfc import MFCModel
from repro.graphs.signed_digraph import SignedDiGraph
from repro.types import NodeState


def certain_chain(signs) -> SignedDiGraph:
    g = SignedDiGraph()
    for i, sign in enumerate(signs):
        g.add_edge(i, i + 1, sign, 1.0)
    return g


class TestCascadeStats:
    def test_chain_depth_and_size(self):
        g = certain_chain([1, 1, 1])
        result = MFCModel(alpha=3.0).run(g, {0: NodeState.POSITIVE}, rng=1)
        stats = cascade_stats(result, g)
        assert stats.num_infected == 4
        assert stats.num_seeds == 1
        assert stats.depth == 3
        assert stats.rounds >= 3
        assert stats.flips == 0

    def test_sign_mix_of_activation_links(self):
        g = certain_chain([1, -1, 1])
        result = MFCModel(alpha=3.0).run(g, {0: NodeState.POSITIVE}, rng=1)
        stats = cascade_stats(result, g)
        assert stats.positive_link_activations == 2
        assert stats.negative_link_activations == 1
        assert stats.negative_activation_share == pytest.approx(1 / 3)

    def test_positive_fraction(self):
        g = certain_chain([-1])
        result = MFCModel(alpha=3.0).run(g, {0: NodeState.POSITIVE}, rng=1)
        stats = cascade_stats(result, g)
        assert stats.positive_fraction == pytest.approx(0.5)  # one +, one -

    def test_seed_only_cascade(self):
        g = SignedDiGraph()
        g.add_node("solo")
        result = MFCModel().run(g, {"solo": NodeState.POSITIVE}, rng=1)
        stats = cascade_stats(result, g)
        assert stats.num_infected == 1
        assert stats.depth == 0
        assert stats.negative_activation_share == 0.0

    def test_flip_counted(self):
        g = SignedDiGraph()
        g.add_edge("s", "f", 1, 1.0)
        g.add_edge("s", "h0", 1, 1.0)
        g.add_edge("h0", "h", 1, 1.0)
        g.add_edge("f", "g", -1, 1.0)
        g.add_edge("h", "g", 1, 1.0)
        result = MFCModel(alpha=3.0).run(g, {"s": NodeState.POSITIVE}, rng=1)
        stats = cascade_stats(result, g)
        assert stats.flips == 1


class TestAggregation:
    def test_means(self):
        g = certain_chain([1, 1])
        model = MFCModel(alpha=3.0)
        batch = [
            cascade_stats(model.run(g, {0: NodeState.POSITIVE}, rng=i), g)
            for i in range(3)
        ]
        agg = aggregate_cascade_stats(batch)
        assert agg.trials == 3
        assert agg.mean_infected == 3.0
        assert agg.mean_depth == 2.0

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            aggregate_cascade_stats([])
