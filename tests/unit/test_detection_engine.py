"""Unit tests for the staged detection engine (repro.pipeline).

Covers multi-component snapshots (budget split, single-node components,
lone-root arborescences), the two-layer artifact cache, and engine/RID
parity on the awkward component shapes.
"""

import pytest

from repro.core.rid import RID, RIDConfig
from repro.core.rid_reference import reference_detect, reference_detect_with_budget
from repro.errors import ConfigError
from repro.graphs.signed_digraph import SignedDiGraph
from repro.obs import MetricsRecorder
from repro.pipeline import ArtifactCache, DetectionEngine
from repro.pipeline.cache import MISS
from repro.runtime.config import RuntimeConfig
from repro.types import NodeState


def multi_component_snapshot() -> SignedDiGraph:
    """Three infected components of very different shapes.

    * chain:  c1(+) -> c2(+) [0.9] -> c3(+) [0.05]  (weak tail)
    * pair:   p1(-) -> p2(-) [0.8]
    * singleton: s1(+)  (no edges at all — a lone-root arborescence)
    """
    g = SignedDiGraph(name="multi")
    g.add_edge("c1", "c2", 1, 0.9)
    g.add_edge("c2", "c3", 1, 0.05)
    g.add_edge("p1", "p2", 1, 0.8)
    g.add_node("s1", NodeState.POSITIVE)
    g.set_states(
        {
            "c1": NodeState.POSITIVE,
            "c2": NodeState.POSITIVE,
            "c3": NodeState.POSITIVE,
            "p1": NodeState.NEGATIVE,
            "p2": NodeState.NEGATIVE,
        }
    )
    return g


def pruned_apart_snapshot() -> SignedDiGraph:
    """One weak component that pruning splits into two lone roots.

    The only link is sign-inconsistent (x(+) -+-> y(-)), so Sec. III-E1
    pruning removes it and each node becomes its own component whose
    arborescence is a lone root.
    """
    g = SignedDiGraph(name="pruned-apart")
    g.add_edge("x", "y", 1, 0.5)
    g.set_states({"x": NodeState.POSITIVE, "y": NodeState.NEGATIVE})
    return g


class TestMultiComponent:
    def test_beta_mode_detects_all_component_roots(self):
        result = RID().detect(multi_component_snapshot())
        assert {"c1", "p1", "s1"} <= result.initiators
        assert result.states["s1"] is NodeState.POSITIVE

    def test_budget_split_across_components(self):
        """Extra budget lands on the weak chain tail, not the other trees."""
        detector = RID()
        result = detector.detect_with_budget(multi_component_snapshot(), budget=4)
        assert result.initiators == {"c1", "p1", "s1", "c3"}
        # One initiator per tree, two for the chain.
        assert sorted(s.k for s in detector.last_selections) == [1, 1, 2]

    def test_budget_counts_singletons(self):
        # 3 trees / 6 nodes bound the feasible budget range.
        with pytest.raises(ConfigError, match=r"\[3, 6\]"):
            RID().detect_with_budget(multi_component_snapshot(), budget=2)
        with pytest.raises(ConfigError, match=r"\[3, 6\]"):
            RID().detect_with_budget(multi_component_snapshot(), budget=7)

    def test_single_node_component_yields_lone_root_selection(self):
        detector = RID()
        detector.detect(multi_component_snapshot())
        lone = [s for s in detector.last_selections if s.tree_size == 1]
        assert len(lone) == 1
        assert set(lone[0].initiators) == {"s1"}
        assert lone[0].k == 1

    def test_pruning_can_create_lone_root_components(self):
        result = RID().detect(pruned_apart_snapshot())
        # Both nodes become their own tree; both are initiators.
        assert result.initiators == {"x", "y"}
        assert len(result.trees) == 2
        assert all(t.number_of_nodes() == 1 for t in result.trees)

    def test_matches_reference_implementation(self):
        snapshot = multi_component_snapshot()
        config = RIDConfig()
        expected, _ = reference_detect(config, snapshot)
        actual = RID(config).detect(snapshot)
        assert actual.initiators == expected.initiators
        assert actual.states == expected.states
        assert actual.objective == expected.objective
        assert [sorted(map(repr, t.nodes())) for t in actual.trees] == [
            sorted(map(repr, t.nodes())) for t in expected.trees
        ]

    def test_budget_matches_reference_implementation(self):
        snapshot = multi_component_snapshot()
        config = RIDConfig()
        for budget in (3, 4, 5, 6):
            expected, _ = reference_detect_with_budget(config, snapshot, budget)
            actual = RID(config).detect_with_budget(snapshot, budget=budget)
            assert actual.initiators == expected.initiators
            assert actual.objective == expected.objective


class TestParallelIdentity:
    def test_workers_two_matches_serial(self):
        snapshot = multi_component_snapshot()
        serial = RID().detect(snapshot)
        parallel = RID().detect(
            snapshot, runtime=RuntimeConfig(workers=2, chunk_size=1)
        )
        assert parallel.initiators == serial.initiators
        assert parallel.states == serial.states
        assert parallel.objective == serial.objective

    def test_workers_two_budget_matches_serial(self):
        snapshot = multi_component_snapshot()
        serial = RID().detect_with_budget(snapshot, budget=4)
        parallel = RID().detect_with_budget(
            snapshot, budget=4, runtime=RuntimeConfig(workers=2, chunk_size=1)
        )
        assert parallel.initiators == serial.initiators
        assert parallel.objective == serial.objective


class TestArtifactCaching:
    def test_repeat_detect_hits_cache(self):
        snapshot = multi_component_snapshot()
        detector = RID()
        first = detector.detect(snapshot)
        misses_after_first = detector.engine.cache_stats()["misses"]
        second = detector.detect(snapshot)
        stats = detector.engine.cache_stats()
        assert stats["hits"] > 0
        assert stats["misses"] == misses_after_first  # no new work
        assert second.initiators == first.initiators
        assert second.objective == first.objective

    def test_budget_sweep_reuses_curves(self):
        """The curve cache key excludes the budget, so a sweep computes
        each tree's DP curve exactly once."""
        snapshot = multi_component_snapshot()
        detector = RID()
        detector.detect_with_budget(snapshot, budget=3)
        misses_after_first = detector.engine.cache_stats()["misses"]
        for budget in (4, 5, 6):
            detector.detect_with_budget(snapshot, budget=budget)
        assert detector.engine.cache_stats()["misses"] == misses_after_first

    def test_structural_counters_survive_cache_hits(self):
        """rid.components / rid.trees etc. are emitted outside cached
        compute, so metrics are cache-temperature independent."""
        snapshot = multi_component_snapshot()
        detector = RID()
        detector.detect(snapshot)  # warm the cache
        recorder = MetricsRecorder()
        detector.detect(snapshot, recorder=recorder)
        counters = recorder.metrics.counters
        assert counters["rid.components"] == 3
        assert counters["rid.trees"] == 3
        # c1, c3 (the weak tail beats β), p1, s1
        assert counters["rid.detected_initiators"] == 4

    def test_config_change_invalidates(self):
        snapshot = multi_component_snapshot()
        engine = DetectionEngine()
        a = engine.detect(RIDConfig(beta=0.1), snapshot)
        b = engine.detect(RIDConfig(beta=10.0), snapshot)
        # Different beta must not serve the other config's selections.
        assert a.result.objective != b.result.objective

    def test_caches_are_per_engine(self):
        snapshot = multi_component_snapshot()
        first = RID()
        first.detect(snapshot)
        second = RID()
        second.detect(snapshot)
        assert second.engine.cache_stats()["hits"] == 0

    def test_shared_engine_shares_artifacts(self):
        snapshot = multi_component_snapshot()
        engine = DetectionEngine()
        RID(engine=engine).detect(snapshot)
        RID(engine=engine).detect(snapshot)
        assert engine.cache_stats()["hits"] > 0

    def test_persistent_store_round_trip(self, tmp_path):
        snapshot = multi_component_snapshot()
        runtime = RuntimeConfig(cache_dir=str(tmp_path))
        cold = RID().detect(snapshot, runtime=runtime)
        # A fresh engine (empty in-process cache) must reload persisted
        # arborescence/DP artifacts from disk and agree exactly.
        warm_detector = RID()
        warm = warm_detector.detect(snapshot, runtime=runtime)
        assert warm.initiators == cold.initiators
        assert warm.states == cold.states
        assert warm.objective == cold.objective
        assert (tmp_path / "pipeline").exists()


class TestArtifactCacheUnit:
    def test_lru_eviction(self):
        cache = ArtifactCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.lookup("a") == 1  # refresh a
        cache.put("c", 3)  # evicts b
        assert cache.lookup("b") is MISS
        assert cache.lookup("a") == 1
        assert cache.lookup("c") == 3

    def test_stats_track_hits_and_misses(self):
        cache = ArtifactCache()
        cache.lookup("nope")
        cache.put("yes", 42)
        cache.lookup("yes")
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 1

    def test_clear(self):
        cache = ArtifactCache()
        cache.put("k", "v")
        cache.clear()
        assert cache.lookup("k") is MISS
        assert cache.total_cost == 0

    def test_eviction_order_is_lru_not_insertion(self):
        """Eviction must follow recency (lookups and puts refresh), not
        insertion order."""
        cache = ArtifactCache(max_entries=3)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.lookup("a") == 1   # a most recent
        cache.put("b", 20)              # b refreshed
        cache.put("d", 4)               # evicts c (the true LRU), not a
        assert cache.keys() == ["a", "b", "d"]
        assert cache.lookup("c") is MISS
        assert cache.stats()["evictions"] == 1

    def test_reinserted_entry_does_not_double_count_cost(self):
        """Invalidate/reinsert cycles must charge an entry's cost once.

        Regression for LRU accounting under repeated invalidation: a key
        that is refreshed in place, or evicted and later reinserted,
        must leave ``total_cost`` equal to the sum of the *live*
        entries' costs — accumulation would shrink the effective budget
        until the cache thrashed everything.
        """
        cache = ArtifactCache(max_entries=8, max_cost=100)
        for _ in range(5):
            cache.put("k", "v", cost=30)  # refresh: replaces, never adds
        assert cache.total_cost == 30
        cache.put("other", "w", cost=30)
        assert cache.total_cost == 60
        for _ in range(3):  # evict (via discard) then reinsert
            assert cache.discard("k")
            cache.put("k", "v", cost=30)
        assert cache.total_cost == 60

    def test_cost_budget_evicts_lru_and_returns_cost(self):
        cache = ArtifactCache(max_entries=8, max_cost=50)
        cache.put("a", "x", cost=20)
        cache.put("b", "y", cost=20)
        cache.put("c", "z", cost=20)  # 60 > 50: evicts a
        assert cache.lookup("a") is MISS
        assert cache.total_cost == 40
        # Evicted-then-reinserted: budget sees 20, not 40, for "a".
        cache.put("a", "x", cost=20)  # 60 > 50: evicts b (LRU)
        assert cache.total_cost == 40
        assert cache.keys() == ["c", "a"]

    def test_most_recent_entry_survives_oversized_put(self):
        cache = ArtifactCache(max_entries=4, max_cost=10)
        cache.put("small", 1, cost=5)
        cache.put("huge", 2, cost=99)
        assert cache.lookup("huge") == 2
        assert cache.lookup("small") is MISS

    def test_artifact_cost_scales_with_graph_size(self):
        from repro.pipeline.cache import artifact_cost

        g = SignedDiGraph()
        g.add_edge(1, 2, 1, 0.5)
        g.add_edge(2, 3, 1, 0.5)
        assert artifact_cost(g) == 5  # 3 nodes + 2 edges
        assert artifact_cost([g, g]) == 10
        assert artifact_cost("opaque") == 1

    def test_discard_unknown_key_is_false(self):
        cache = ArtifactCache()
        assert not cache.discard("absent")
