"""Unit tests for the graph samplers."""

import pytest

from repro.errors import ConfigError, NodeNotFoundError
from repro.graphs.generators.random_graphs import signed_preferential_attachment
from repro.graphs.sampling import (
    forest_fire_sample,
    random_edge_sample,
    random_node_sample,
    snowball_sample,
)
from repro.graphs.signed_digraph import SignedDiGraph
from repro.types import NodeState, Sign


@pytest.fixture(scope="module")
def big_graph() -> SignedDiGraph:
    return signed_preferential_attachment(200, out_degree=3, rng=5)


class TestRandomNodeSample:
    def test_node_count(self, big_graph):
        sample = random_node_sample(big_graph, 0.25, rng=1)
        assert sample.number_of_nodes() == 50

    def test_edges_are_induced(self, big_graph):
        sample = random_node_sample(big_graph, 0.5, rng=1)
        for u, v, _ in sample.iter_edges():
            assert big_graph.has_edge(u, v)

    def test_deterministic(self, big_graph):
        a = random_node_sample(big_graph, 0.3, rng=9)
        b = random_node_sample(big_graph, 0.3, rng=9)
        assert set(a.nodes()) == set(b.nodes())

    @pytest.mark.parametrize("fraction", [0.0, 1.5, -0.2])
    def test_invalid_fraction(self, big_graph, fraction):
        with pytest.raises(ConfigError):
            random_node_sample(big_graph, fraction)

    def test_full_fraction_is_whole_graph(self, big_graph):
        sample = random_node_sample(big_graph, 1.0, rng=1)
        assert sample.number_of_nodes() == big_graph.number_of_nodes()


class TestRandomEdgeSample:
    def test_fraction_zero_empty(self, big_graph):
        assert random_edge_sample(big_graph, 0.0, rng=1).number_of_edges() == 0

    def test_fraction_one_keeps_all(self, big_graph):
        sample = random_edge_sample(big_graph, 1.0, rng=1)
        assert sample.number_of_edges() == big_graph.number_of_edges()

    def test_payloads_preserved(self, big_graph):
        sample = random_edge_sample(big_graph, 0.5, rng=1)
        for u, v, data in sample.iter_edges():
            assert big_graph.sign(u, v) is data.sign
            assert big_graph.weight(u, v) == data.weight

    def test_intermediate_fraction_in_range(self, big_graph):
        sample = random_edge_sample(big_graph, 0.5, rng=1)
        total = big_graph.number_of_edges()
        assert 0.3 * total < sample.number_of_edges() < 0.7 * total


class TestSnowballSample:
    def test_size_cap(self, big_graph):
        sample = snowball_sample(big_graph, 0, max_nodes=30)
        assert sample.number_of_nodes() == 30

    def test_contains_seed(self, big_graph):
        sample = snowball_sample(big_graph, 5, max_nodes=10)
        assert sample.has_node(5)

    def test_connected_in_undirected_view(self, big_graph):
        from repro.core.components import weakly_connected_components

        sample = snowball_sample(big_graph, 0, max_nodes=40)
        assert len(weakly_connected_components(sample)) == 1

    def test_missing_seed_raises(self, big_graph):
        with pytest.raises(NodeNotFoundError):
            snowball_sample(big_graph, "ghost", max_nodes=5)

    def test_bad_max_nodes(self, big_graph):
        with pytest.raises(ConfigError):
            snowball_sample(big_graph, 0, max_nodes=0)


class TestForestFireSample:
    def test_target_size_reached(self, big_graph):
        sample = forest_fire_sample(big_graph, 60, rng=1)
        assert sample.number_of_nodes() == 60

    def test_target_capped_at_graph_size(self, big_graph):
        sample = forest_fire_sample(big_graph, 10_000, rng=1)
        assert sample.number_of_nodes() == big_graph.number_of_nodes()

    def test_deterministic(self, big_graph):
        a = forest_fire_sample(big_graph, 40, rng=3)
        b = forest_fire_sample(big_graph, 40, rng=3)
        assert set(a.nodes()) == set(b.nodes())

    def test_preserves_states_and_signs(self, big_graph):
        big_graph.set_state(0, NodeState.POSITIVE)
        sample = forest_fire_sample(big_graph, 80, rng=2)
        if sample.has_node(0):
            assert sample.state(0) is NodeState.POSITIVE
        for u, v, data in sample.iter_edges():
            assert big_graph.sign(u, v) is data.sign

    @pytest.mark.parametrize("kwargs", [
        {"target_nodes": 0},
        {"target_nodes": 5, "forward_probability": 1.0},
        {"target_nodes": 5, "backward_probability": -0.1},
    ])
    def test_invalid_parameters(self, big_graph, kwargs):
        with pytest.raises(ConfigError):
            forest_fire_sample(big_graph, **kwargs)

    def test_heavy_tail_better_preserved_than_node_sampling(self, big_graph):
        # Forest fire should retain hubs much more often than uniform
        # node sampling — check the max in-degree of the samples.
        ff = forest_fire_sample(big_graph, 60, rng=4)
        ns = random_node_sample(big_graph, 0.3, rng=4)
        ff_max = max(ff.in_degree(v) for v in ff.nodes())
        ns_max = max(ns.in_degree(v) for v in ns.nodes())
        assert ff_max >= ns_max
