"""Tests for documented model degenerations and parameter limits.

The MFC model is designed to *contain* Independent Cascade: with
``alpha = 1`` (no boost) and flips disabled, its semantics coincide with
sign-propagating IC. These tests pin down that containment plus other
limit behaviours (round truncation, voter laziness).
"""

from statistics import mean

import pytest

from repro.diffusion.ic import ICModel
from repro.diffusion.mfc import MFCModel
from repro.diffusion.voter import SignedVoterModel
from repro.graphs.generators.random_graphs import signed_erdos_renyi
from repro.graphs.signed_digraph import SignedDiGraph
from repro.types import NodeState


class TestMFCDegeneratesToIC:
    def test_same_mean_spread(self):
        graph = signed_erdos_renyi(40, 0.1, positive_probability=0.7, rng=3)
        seeds = {0: NodeState.POSITIVE}
        mfc = MFCModel(alpha=1.0, allow_flips=False)
        ic = ICModel()
        mfc_sizes = [
            mfc.run(graph, seeds, rng=trial).num_infected() for trial in range(150)
        ]
        ic_sizes = [
            ic.run(graph, seeds, rng=trial).num_infected() for trial in range(150)
        ]
        assert mean(mfc_sizes) == pytest.approx(mean(ic_sizes), rel=0.15)

    def test_identical_given_shared_stream(self):
        # Force byte-identical randomness by aligning the models' RNG
        # namespaces (streams are normally decorrelated by model name);
        # with no boost and no flips both consume draws in the same order.
        graph = signed_erdos_renyi(30, 0.15, rng=5)
        seeds = {0: NodeState.POSITIVE}
        mfc = MFCModel(alpha=1.0, allow_flips=False)
        ic = ICModel()
        mfc.name = ic.name = "degeneration-check"  # align RNG namespaces
        for seed in range(10):
            mfc_result = mfc.run(graph, seeds, rng=seed)
            ic_result = ic.run(graph, seeds, rng=seed)
            assert mfc_result.final_states == ic_result.final_states
            assert [
                (e.round, e.source, e.target, e.state) for e in mfc_result.events
            ] == [(e.round, e.source, e.target, e.state) for e in ic_result.events]


class TestRoundTruncation:
    def test_max_rounds_bounds_depth(self):
        g = SignedDiGraph()
        for i in range(10):
            g.add_edge(i, i + 1, 1, 1.0)
        result = MFCModel(alpha=3.0, max_rounds=3).run(
            g, {0: NodeState.POSITIVE}, rng=1
        )
        assert result.rounds == 3
        assert result.num_infected() == 4  # seed + 3 hops

    def test_unbounded_run_reaches_everything(self):
        g = SignedDiGraph()
        for i in range(10):
            g.add_edge(i, i + 1, 1, 1.0)
        result = MFCModel(alpha=3.0).run(g, {0: NodeState.POSITIVE}, rng=1)
        assert result.num_infected() == 11


class TestLazyVoter:
    def test_update_probability_zero_freezes_opinions(self):
        g = SignedDiGraph()
        g.add_edge("u", "v", 1, 1.0)
        result = SignedVoterModel(rounds=5, update_probability=0.0).run(
            g, {"u": NodeState.POSITIVE}, rng=1
        )
        assert "v" not in result.final_states

    def test_partial_update_probability_slows_spread(self):
        g = SignedDiGraph()
        for i in range(6):
            g.add_edge(i, i + 1, 1, 1.0)
        eager = SignedVoterModel(rounds=6, update_probability=1.0).run(
            g, {0: NodeState.POSITIVE}, rng=1
        )
        lazy_sizes = [
            SignedVoterModel(rounds=6, update_probability=0.3)
            .run(g, {0: NodeState.POSITIVE}, rng=trial)
            .num_infected()
            for trial in range(30)
        ]
        assert mean(lazy_sizes) < eager.num_infected()


class TestLikelihoodInconsistentValueReading:
    def test_prose_reading_ignores_broken_paths(self):
        from repro.core.likelihood import node_infection_probability

        g = SignedDiGraph()
        g.add_edge("s", "m", 1, 0.5)
        g.add_edge("m", "t", 1, 0.5)
        g.set_states(
            {
                "s": NodeState.POSITIVE,
                "m": NodeState.NEGATIVE,  # s -> m inconsistent
                "t": NodeState.NEGATIVE,
            }
        )
        equation = node_infection_probability(
            g, "t", {"s": NodeState.POSITIVE}, alpha=3.0, inconsistent_value=0.0
        )
        prose = node_infection_probability(
            g, "t", {"s": NodeState.POSITIVE}, alpha=3.0, inconsistent_value=1.0
        )
        assert equation == 0.0
        # Prose reading: the broken hop contributes factor 1, leaving the
        # consistent m -> t hop: m(-) -> t(-) positive link, g = 1.
        assert prose == pytest.approx(1.0)
