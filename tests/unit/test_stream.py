"""Unit tests for repro.stream: deltas, event logs, incremental engine."""

import pytest

from repro.core.rid import RID, RIDConfig
from repro.errors import (
    ConfigError,
    DeltaApplicationError,
    EventLogFormatError,
)
from repro.graphs.signed_digraph import SignedDiGraph
from repro.pipeline.engine import DetectionEngine
from repro.stream import (
    EventLog,
    SnapshotDelta,
    StreamingDetectionEngine,
    StreamReplay,
    apply_delta,
    read_event_log,
    synthetic_stream,
    write_event_log,
)
from repro.types import NodeState


def two_component_snapshot() -> SignedDiGraph:
    """Two positive chains (1->2->3 and 10->11), plus inactive bystanders
    20 and 21 wired to each other only."""
    g = SignedDiGraph(name="two-comp")
    g.add_edge(1, 2, 1, 0.9)
    g.add_edge(2, 3, 1, 0.8)
    g.add_edge(10, 11, 1, 0.7)
    g.add_edge(20, 21, 1, 0.6)
    g.set_states({n: NodeState.POSITIVE for n in (1, 2, 3, 10, 11)})
    return g


def results_equal(a, b) -> bool:
    return (
        a.initiators == b.initiators
        and a.states == b.states
        and a.objective == b.objective
        and [sorted(t.nodes()) for t in a.trees] == [sorted(t.nodes()) for t in b.trees]
    )


class TestSnapshotDelta:
    def test_empty_and_touched(self):
        assert SnapshotDelta().is_empty()
        delta = SnapshotDelta(
            states={1: NodeState.POSITIVE},
            add_edges=[(1, 2, 1, 0.5)],
            remove_edges=[(3, 4)],
            remove_nodes=[5],
        )
        assert not delta.is_empty()
        assert delta.touched() == {1, 2, 3, 4, 5}

    def test_json_round_trip(self):
        delta = SnapshotDelta(
            states={1: NodeState.NEGATIVE, "x": NodeState.INACTIVE},
            add_edges=[("x", 1, -1, 0.25)],
            remove_edges=[(1, 2)],
            remove_nodes=["y"],
        )
        back = SnapshotDelta.from_json(delta.to_json())
        assert back == delta

    def test_apply_creates_unknown_state_node(self):
        g = two_component_snapshot()
        touched = apply_delta(g, SnapshotDelta(states={99: NodeState.POSITIVE}))
        assert touched == {99}
        assert g.state(99) is NodeState.POSITIVE

    def test_apply_reports_removed_node_neighbors(self):
        g = two_component_snapshot()
        touched = apply_delta(g, SnapshotDelta(remove_nodes=[2]))
        assert touched == {1, 2, 3}
        assert not g.has_node(2)

    def test_apply_missing_edge_raises(self):
        g = two_component_snapshot()
        with pytest.raises(DeltaApplicationError):
            apply_delta(g, SnapshotDelta(remove_edges=[(1, 3)]))

    def test_apply_missing_node_raises(self):
        g = two_component_snapshot()
        with pytest.raises(DeltaApplicationError):
            apply_delta(g, SnapshotDelta(remove_nodes=[99]))


class TestEventLog:
    def test_round_trip_with_snapshot(self, tmp_path):
        snapshot, deltas = synthetic_stream(components=2, size=5, deltas=4, seed=11)
        path = tmp_path / "events.jsonl"
        assert write_event_log(path, deltas, snapshot=snapshot) == 4
        log = read_event_log(path)
        assert len(log) == 4
        assert log.deltas == deltas
        assert sorted(log.snapshot.nodes()) == sorted(snapshot.nodes())
        assert log.snapshot.states() == snapshot.states()

    def test_round_trip_without_snapshot(self, tmp_path):
        path = tmp_path / "events.jsonl"
        write_event_log(path, [SnapshotDelta(states={1: NodeState.POSITIVE})])
        log = read_event_log(path)
        assert log.snapshot is None and len(log) == 1

    def test_bad_json_reports_line_number(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"type": "delta"}\nnot json\n')
        with pytest.raises(EventLogFormatError, match="line 2"):
            read_event_log(path)

    def test_snapshot_must_be_first(self, tmp_path):
        snapshot, deltas = synthetic_stream(components=2, size=4, deltas=1, seed=1)
        path = tmp_path / "events.jsonl"
        write_event_log(path, deltas, snapshot=snapshot)
        with open(path) as fh:
            lines = fh.readlines()
        path.write_text(lines[1] + lines[0])
        with pytest.raises(EventLogFormatError, match="first line"):
            read_event_log(path)

    def test_unknown_record_type(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"type": "mystery"}\n')
        with pytest.raises(EventLogFormatError, match="mystery"):
            read_event_log(path)

    def test_unsupported_format_tag(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"type": "snapshot", "format": "repro.stream/v99", "graph": {}}\n')
        with pytest.raises(EventLogFormatError, match="v99"):
            read_event_log(path)


class TestStreamingEngine:
    def assert_identical_to_cold(self, engine):
        mat = engine.materialise()
        got = engine.detect()
        if mat.number_of_nodes() == 0:
            assert got.initiators == set() and got.trees == []
            return
        want = RID(engine.config).detect(mat)
        assert results_equal(got, want)

    def test_initial_partition_matches_cold_components(self):
        engine = StreamingDetectionEngine(two_component_snapshot())
        comps = engine.components()
        assert [sorted(c.nodes()) for c in comps] == [[1, 2, 3], [10, 11]]
        self.assert_identical_to_cold(engine)

    def test_copy_semantics_protect_caller_graph(self):
        g = two_component_snapshot()
        engine = StreamingDetectionEngine(g)
        engine.apply(SnapshotDelta(remove_nodes=[3]))
        assert g.has_node(3)  # caller's graph untouched

    def test_zero_dirty_component_delta_is_full_reuse(self):
        """A delta touching only inactive bystanders invalidates nothing:
        re-detection must be 100% artifact-cache hits."""
        engine = StreamingDetectionEngine(two_component_snapshot())
        engine.detect()  # warm the cache
        warm_reuse = engine.last_reused_artifacts
        report = engine.apply(SnapshotDelta(add_edges=[(21, 20, 1, 0.5)]))
        assert report.invalidated_components == 0
        assert report.recomputed_components == 0
        assert report.total_components == 2
        engine.detect()
        assert engine.last_computed_artifacts == 0
        assert engine.last_reused_artifacts >= max(warm_reuse, 1)
        self.assert_identical_to_cold(engine)

    def test_merge_two_components(self):
        engine = StreamingDetectionEngine(two_component_snapshot())
        report = engine.apply(SnapshotDelta(add_edges=[(3, 10, 1, 0.5)]))
        assert report.invalidated_components == 2
        assert report.recomputed_components == 1
        assert engine.component_count() == 1
        assert sorted(engine.components()[0].nodes()) == [1, 2, 3, 10, 11]
        self.assert_identical_to_cold(engine)

    def test_merge_via_reinfection_absorbs_untouched_component(self):
        """Re-activating a bystander wired to an untouched component must
        absorb that component on contact (the BFS reaches it through a
        resurrected live edge)."""
        g = two_component_snapshot()
        g.add_edge(11, 20, 1, 0.5)  # dormant link into inactive 20
        engine = StreamingDetectionEngine(g)
        assert engine.component_count() == 2
        engine.apply(SnapshotDelta(states={20: NodeState.POSITIVE}))
        assert engine.component_count() == 2  # {1,2,3} and {10,11,20}
        assert sorted(engine.components()[1].nodes()) == [10, 11, 20]
        self.assert_identical_to_cold(engine)

    def test_recovery_splits_component(self):
        engine = StreamingDetectionEngine(two_component_snapshot())
        report = engine.apply(SnapshotDelta(states={2: NodeState.INACTIVE}))
        assert report.invalidated_components == 1
        assert report.recomputed_components == 2  # {1} and {3}
        assert engine.component_count() == 3
        self.assert_identical_to_cold(engine)

    def test_emptying_the_infection_yields_empty_result(self):
        """Cold detect raises EmptyInfectionError on zero nodes; the
        stream must instead produce a well-formed empty result."""
        engine = StreamingDetectionEngine(two_component_snapshot())
        engine.apply(
            SnapshotDelta(states={n: NodeState.INACTIVE for n in (1, 2, 3, 10, 11)})
        )
        assert engine.component_count() == 0
        result = engine.detect()
        assert result.initiators == set()
        assert result.states == {}
        assert result.trees == []
        assert result.objective == 0.0
        # Budget mode: only budget=0 is feasible on an empty infection.
        assert engine.detect(budget=0).initiators == set()
        with pytest.raises(ConfigError):
            engine.detect(budget=1)

    def test_reinfection_after_empty(self):
        engine = StreamingDetectionEngine(two_component_snapshot())
        engine.apply(
            SnapshotDelta(states={n: NodeState.INACTIVE for n in (1, 2, 3, 10, 11)})
        )
        engine.apply(SnapshotDelta(states={2: NodeState.POSITIVE, 3: NodeState.POSITIVE}))
        assert engine.component_count() == 1
        self.assert_identical_to_cold(engine)

    def test_sign_flip_prunes_live_edge(self):
        """An opinion flip that breaks Definition 5 consistency must
        split the component exactly like the cold Prune stage would."""
        engine = StreamingDetectionEngine(two_component_snapshot())
        engine.apply(SnapshotDelta(states={3: NodeState.NEGATIVE}))
        # Edge 2->3 (sign +1) now inconsistent: +1 * +1 != -1.
        assert engine.component_count() == 3
        self.assert_identical_to_cold(engine)

    def test_budget_mode_matches_cold(self):
        engine = StreamingDetectionEngine(two_component_snapshot())
        engine.apply(SnapshotDelta(states={11: NodeState.NEGATIVE}))
        mat = engine.materialise()
        cold = RID(engine.config)
        trees = len(cold.detect(mat).trees)
        got = engine.detect(budget=trees + 1)
        want = cold.detect_with_budget(mat, trees + 1)
        assert results_equal(got, want)

    def test_engine_and_cache_are_mutually_exclusive(self):
        with pytest.raises(ValueError):
            StreamingDetectionEngine(
                two_component_snapshot(),
                engine=DetectionEngine(),
                cache=__import__("repro.pipeline.cache", fromlist=["ArtifactCache"]).ArtifactCache(),
            )

    def test_partition_invariant_after_synthetic_replay(self):
        """After any replay, the partition must exactly cover the active
        nodes, one component per live-connected piece."""
        snapshot, deltas = synthetic_stream(components=3, size=8, deltas=7, seed=5)
        engine = StreamingDetectionEngine(snapshot)
        for delta in deltas:
            engine.apply(delta)
            covered = set()
            for comp in engine.components():
                nodes = set(comp.nodes())
                assert not (covered & nodes)
                covered |= nodes
            active = {
                n for n in engine.graph.nodes() if engine.graph.state(n).is_active
            }
            assert covered == active
        self.assert_identical_to_cold(engine)


class TestStreamReplay:
    """The replay result object: sequence-compatible plus named views."""

    def _replay(self, deltas=3, seed=2):
        snapshot, stream = synthetic_stream(
            components=2, size=6, deltas=deltas, seed=seed
        )
        return StreamingDetectionEngine(snapshot).replay(stream)

    def test_is_a_sequence_over_steps(self):
        replay = self._replay()
        assert isinstance(replay, StreamReplay)
        assert len(replay) == 3
        assert list(replay) == replay.steps
        assert replay[0] is replay.steps[0]
        assert replay[-1] is replay.steps[-1]
        assert replay[1:] == replay.steps[1:]
        assert replay.steps[0] in replay

    def test_final_is_last_step_result(self):
        replay = self._replay()
        assert replay.final is replay.steps[-1].result

    def test_latencies_align_with_steps(self):
        replay = self._replay()
        assert len(replay.latencies) == len(replay.steps)
        assert all(lat > 0.0 for lat in replay.latencies)

    def test_empty_replay(self):
        snapshot, _ = synthetic_stream(components=2, size=5, deltas=1, seed=3)
        replay = StreamingDetectionEngine(snapshot).replay([])
        assert len(replay) == 0
        assert replay.final is None
        assert replay.latencies == []

    def test_misaligned_latencies_rejected(self):
        with pytest.raises(ValueError, match="align"):
            StreamReplay([], latencies=[0.1])


class TestFacade:
    def test_detect_stream_accepts_deltas_iterable(self):
        snapshot, deltas = synthetic_stream(components=2, size=6, deltas=3, seed=2)
        import repro

        replay = repro.detect_stream(deltas, snapshot)
        assert isinstance(replay, StreamReplay)
        assert len(replay) == 3
        # Positional access stays sequence-compatible...
        assert replay[-1].result.method.startswith("rid(")
        # ...and the named accessor is the same object.
        assert replay.final is replay[-1].result

    def test_detect_stream_requires_a_graph(self):
        with pytest.raises(ConfigError):
            import repro

            repro.detect_stream([SnapshotDelta()])

    def test_detect_stream_rejects_double_snapshot(self, tmp_path):
        snapshot, deltas = synthetic_stream(components=2, size=5, deltas=2, seed=3)
        path = tmp_path / "events.jsonl"
        write_event_log(path, deltas, snapshot=snapshot)
        import repro

        with pytest.raises(ConfigError):
            repro.detect_stream(str(path), snapshot)

    def test_detect_stream_event_log_object(self):
        snapshot, deltas = synthetic_stream(components=2, size=5, deltas=2, seed=4)
        import repro

        steps = repro.detect_stream(EventLog(snapshot=snapshot, deltas=deltas))
        assert len(steps) == 2
