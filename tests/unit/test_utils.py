"""Unit tests for utils: rng, disjoint set, validation."""

import random

import pytest

from repro.errors import InvalidSignError, InvalidWeightError
from repro.utils.disjoint_set import DisjointSet
from repro.utils.rng import derive_seed, spawn_rng
from repro.utils.validation import (
    check_positive,
    check_probability,
    check_sign_value,
    check_state_value,
    check_weight,
)


class TestSpawnRng:
    def test_int_seed_is_deterministic(self):
        assert spawn_rng(42).random() == spawn_rng(42).random()

    def test_namespace_decorrelates_streams(self):
        assert spawn_rng(42, "a").random() != spawn_rng(42, "b").random()

    def test_namespace_is_stable(self):
        assert spawn_rng(42, "x").random() == spawn_rng(42, "x").random()

    def test_parent_random_spawns_child(self):
        parent = random.Random(1)
        child = spawn_rng(parent)
        assert isinstance(child, random.Random)
        # Parent remains usable and its state advanced.
        parent.random()

    def test_none_gives_fresh_rng(self):
        assert isinstance(spawn_rng(None), random.Random)

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            spawn_rng("seed")  # type: ignore[arg-type]


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "a", 1) == derive_seed(7, "a", 1)

    def test_labels_matter(self):
        assert derive_seed(7, "a", 1) != derive_seed(7, "a", 2)

    def test_base_seed_matters(self):
        assert derive_seed(7, "a") != derive_seed(8, "a")

    def test_known_collision_of_old_mixing_resolved(self):
        # Regression: the crc32 ^ (seed & 0xFFFFFFFF) ^ ((seed >> 32) << 7)
        # scheme mapped these two distinct 56-bit base seeds to the very
        # same child seed (both gave 3144622054 for labels ("trial", 0)),
        # i.e. identical trial streams. The full-width digest must keep
        # them apart.
        s1, s2 = 6457330172832862, 8435469185685416
        assert derive_seed(s1, "trial", 0) != derive_seed(s2, "trial", 0)

    def test_negative_seeds_stay_in_range(self):
        # The old mixing produced negative child seeds for negative base
        # seeds (arithmetic shift), leaking sign into downstream streams.
        for seed in (-1, -7, -(2**40), -(2**63)):
            child = derive_seed(seed, "a")
            assert 0 <= child < 2**64

    def test_high_seed_bits_decorrelate(self):
        # Seeds differing only above bit 32 must yield distinct streams.
        children = {derive_seed(7 + (i << 32), "x") for i in range(256)}
        assert len(children) == 256

    def test_cross_platform_stable_value(self):
        # blake2b over repr is platform-independent; pin one value so an
        # accidental algorithm change cannot slip through silently.
        assert derive_seed(7, "a", 1) == 8946315620067322579


class TestDisjointSet:
    def test_singletons(self):
        ds = DisjointSet([1, 2, 3])
        assert len(ds) == 3
        assert not ds.connected(1, 2)

    def test_union_merges(self):
        ds = DisjointSet()
        assert ds.union(1, 2)
        assert ds.connected(1, 2)
        assert len(ds) == 1 + 0  # both created lazily, merged into one set

    def test_union_idempotent(self):
        ds = DisjointSet()
        ds.union(1, 2)
        assert not ds.union(2, 1)

    def test_transitive_connectivity(self):
        ds = DisjointSet()
        ds.union(1, 2)
        ds.union(2, 3)
        assert ds.connected(1, 3)

    def test_groups_partition(self):
        ds = DisjointSet(range(5))
        ds.union(0, 1)
        ds.union(2, 3)
        groups = sorted(sorted(g) for g in ds.groups())
        assert groups == [[0, 1], [2, 3], [4]]

    def test_contains_and_iter(self):
        ds = DisjointSet([1])
        assert 1 in ds
        assert 2 not in ds
        ds.find(2)  # lazily adds
        assert set(ds) == {1, 2}

    def test_len_counts_sets(self):
        ds = DisjointSet(range(4))
        ds.union(0, 1)
        assert len(ds) == 3


class TestValidators:
    def test_check_weight_accepts_bounds(self):
        assert check_weight(0.0) == 0.0
        assert check_weight(1.0) == 1.0

    @pytest.mark.parametrize("bad", [-0.01, 1.01, float("nan"), "x", None])
    def test_check_weight_rejects(self, bad):
        with pytest.raises((InvalidWeightError, ValueError)):
            check_weight(bad)

    def test_check_probability(self):
        assert check_probability(0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability(1.5)

    def test_check_sign_value(self):
        assert check_sign_value(1) == 1
        assert check_sign_value(-1) == -1
        with pytest.raises(InvalidSignError):
            check_sign_value(0)

    def test_check_state_value(self):
        for ok in (-1, 0, 1, 2):
            assert check_state_value(ok) == ok
        with pytest.raises(ValueError):
            check_state_value(3)

    def test_check_positive(self):
        assert check_positive(0.1) == 0.1
        with pytest.raises(ValueError):
            check_positive(0)
        with pytest.raises(ValueError):
            check_positive(float("nan"))
